"""k-path-bisimulation partitioning of s-t pairs (Algorithm 1).

The paper partitions ``P≤k`` into CPQ_k-equivalence classes using
k-path-bisimulation (Def. 4.1) computed bottom-up (Sec. IV-C): level-1
blocks group pairs by their direct edge labels, and level-``i`` blocks
refine level-``i-1`` blocks by the *decompositions* of each pair — the set
of ``(block of (v,m) at level i-1, block of (m,u) at level 1)`` over all
midpoints ``m``.

We realize the paper's "sequence of block identifiers
``⟨b1(v,u),…,bk(v,u)⟩``" as **cumulative class ids**: the level-``i``
signature folds the pair's level-``i-1`` class in, so the level-``k`` id
alone identifies the full sequence.  This sidesteps the ``Null``-block
bookkeeping of the pseudo-code while producing a partition at least as
fine as the paper's — and any refinement of a correct partition is still
correct for the index (the paper's own lazy maintenance relies on this,
Prop. 4.2).  The two invariants index correctness actually needs — all
pairs of a class share the same ``L≤k`` set, and agree on ``v == u`` —
are enforced by construction and property-tested.

The computation runs entirely in the interned code space: pairs are
64-bit codes, decompositions pack ``(prev_class, edge_class)`` into one
int, and signatures hash ints instead of nested tuples.
:func:`compute_partition` decodes the result for the public tuple-based
API; the index builders consume :func:`compute_partition_codes` directly.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph, Pair
from repro.graph.interner import ID_BITS, ID_HIGH_MASK, ID_MASK
from repro.core.pairset import PairSet

#: A level signature: hashable key identifying a block within a level.
_Signature = tuple



@dataclass
class PathPartition:
    """The CPQ_k-equivalence partition of the non-empty-path pairs.

    Attributes:
        k: the path-length bound the partition was computed for.
        class_of: pair → class id, over all pairs with a path of length 1..k.
        blocks: class id → sorted list of member pairs.
        loop_classes: ids of classes whose pairs are loops (``v == u``).
        level_class_counts: number of blocks per level (diagnostics; the
            per-level growth is what Fig. 3's two rows illustrate).
    """

    k: int
    class_of: dict[Pair, int]
    blocks: dict[int, list[Pair]]
    loop_classes: frozenset[int]
    level_class_counts: list[int]

    @property
    def num_classes(self) -> int:
        """``|C|``, the paper's class-count statistic (Table III)."""
        return len(self.blocks)

    @property
    def num_pairs(self) -> int:
        """``|P≤k|`` restricted to non-empty paths."""
        return len(self.class_of)


@dataclass
class CodePartition:
    """The same partition in columnar form (pair codes, not tuples)."""

    k: int
    class_of: dict[int, int]
    blocks: dict[int, PairSet]
    loop_classes: frozenset[int]
    level_class_counts: list[int]

    @property
    def num_classes(self) -> int:
        return len(self.blocks)

    @property
    def num_pairs(self) -> int:
        return len(self.class_of)


def _level1_code_classes(graph: LabeledDigraph) -> dict[int, int]:
    """Level-1 partition over pair codes: ``(v==u, L1(v,u))`` grouping.

    This realizes Def. 4.1 conditions (1) and (2): two pairs are
    1-path-bisimilar iff they agree on loop-ness and on the extended edge
    labels between them (the inverse-extension makes condition 2's
    both-direction clauses a single label-set comparison).
    """
    view = graph.interned()
    label_sets: dict[int, set[int]] = {}
    for vid, uid, lab in view.triples:
        code = (vid << ID_BITS) | uid
        entry = label_sets.get(code)
        if entry is None:
            label_sets[code] = {lab}
        else:
            entry.add(lab)
        inverse_code = (uid << ID_BITS) | vid
        entry = label_sets.get(inverse_code)
        if entry is None:
            label_sets[inverse_code] = {-lab}
        else:
            entry.add(-lab)
    ids: dict[_Signature, int] = {}
    classes: dict[int, int] = {}
    for code, labels in label_sets.items():
        signature = ((code >> ID_BITS) == (code & ID_MASK), frozenset(labels))
        class_id = ids.setdefault(signature, len(ids))
        classes[code] = class_id
    return classes


def level1_classes(graph: LabeledDigraph) -> dict[Pair, int]:
    """Level-1 partition, decoded to vertex pairs (public API)."""
    decode = graph.interner.decode_pair
    return {
        decode(code): class_id
        for code, class_id in _level1_code_classes(graph).items()
    }


def compute_partition_codes(graph: LabeledDigraph, k: int) -> CodePartition:
    """Compute the CPQ_k-equivalence partition bottom-up (Algorithm 1).

    Level ``i`` composes every level-``i-1`` pair ``(v, m)`` with every
    level-1 pair ``(m, u)``; pairs are then re-grouped by
    ``(previous class, decomposition-class set)``.  The per-level work is
    ``O(d · |P≤i-1|)`` plus the grouping, matching Theorem 4.3's bound
    (grouping here is a hash aggregation rather than the paper's sort —
    same asymptotics, simpler in Python).  Decomposition entries pack
    ``prev_class << 32 | edge_class`` into single ints, so each level
    hashes flat integers rather than nested tuples of objects.
    """
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    current = _level1_code_classes(graph)
    level_counts = [len(set(current.values()))]
    high_mask = ID_HIGH_MASK
    id_mask = ID_MASK
    empty_decomposition: frozenset[int] = frozenset()

    # Level-1 adjacency annotated with classes: m → [(u, C1(m, u))].
    # Built once; reused by every level's composition step.
    num_ids = len(graph.interner)
    edge_class_by_source: list[list[tuple[int, int]]] = [[] for _ in range(num_ids)]
    for code, class_id in current.items():
        edge_class_by_source[code >> ID_BITS].append((code & id_mask, class_id))

    for _ in range(2, k + 1):
        # Decomposition entries pack (prev_class, edge_class) into one
        # int; duplicates are appended freely and collapsed by the
        # signature's frozenset — cheaper than hashing into a set per add.
        decompositions: dict[int, list[int]] = {}
        get_bucket = decompositions.get
        for code, prev_class in current.items():
            annotated = edge_class_by_source[code & id_mask]
            if not annotated:
                continue
            v_high = code & high_mask
            prev_high = prev_class << ID_BITS
            for u, edge_class in annotated:
                pair_code = v_high | u
                decomposition = prev_high | edge_class
                bucket = get_bucket(pair_code)
                if bucket is None:
                    decompositions[pair_code] = [decomposition]
                else:
                    bucket.append(decomposition)
        ids: dict[_Signature, int] = {}
        assign = ids.setdefault
        refined: dict[int, int] = {}
        get_prev = current.get
        for code, bucket in decompositions.items():
            signature = (
                (code >> ID_BITS) == (code & id_mask),
                get_prev(code),
                frozenset(bucket),
            )
            refined[code] = assign(signature, len(ids))
        for code, prev_class in current.items():
            if code not in decompositions:
                signature = (
                    (code >> ID_BITS) == (code & id_mask),
                    prev_class,
                    empty_decomposition,
                )
                refined[code] = assign(signature, len(ids))
        current = refined
        level_counts.append(len(ids))

    block_codes: dict[int, list[int]] = {}
    for code, class_id in current.items():
        block_codes.setdefault(class_id, []).append(code)
    interner = graph.interner
    # Block members are unique by construction; sort without a dedup pass.
    blocks = {
        class_id: PairSet(array("q", sorted(codes)), interner)
        for class_id, codes in block_codes.items()
    }
    loop_classes = frozenset(
        class_id
        for class_id, members in blocks.items()
        if members and (first := members.codes[0]) >> ID_BITS == first & ID_MASK
    )
    return CodePartition(
        k=k,
        class_of=current,
        blocks=blocks,
        loop_classes=loop_classes,
        level_class_counts=level_counts,
    )


def compute_partition(graph: LabeledDigraph, k: int) -> PathPartition:
    """Tuple-decoded view of :func:`compute_partition_codes` (public API)."""
    coded = compute_partition_codes(graph, k)
    decode = graph.interner.decode_pair
    blocks = {
        class_id: sorted(members, key=repr)
        for class_id, members in coded.blocks.items()
    }
    return PathPartition(
        k=coded.k,
        class_of={decode(code): cid for code, cid in coded.class_of.items()},
        blocks=blocks,
        loop_classes=coded.loop_classes,
        level_class_counts=coded.level_class_counts,
    )


def refines(finer: dict[Pair, int], coarser: dict[Pair, int]) -> bool:
    """True if partition ``finer`` refines ``coarser`` on the common domain.

    Exposed for the property-based tests of the refinement chain
    ``level-i refines level-(i-1)`` (Sec. IV-C's key invariant).
    """
    block_map: dict[int, int] = {}
    for pair, fine_id in finer.items():
        coarse_id = coarser.get(pair)
        if coarse_id is None:
            continue
        known = block_map.setdefault(fine_id, coarse_id)
        if known != coarse_id:
            return False
    return True
