"""Saving and loading built indexes (JSON payload, crash-safe on disk).

A built CPQx/iaCPQx is a significant investment (Table IV's construction
times); a downstream deployment wants to build once and reload.  The
format stores the graph (edges, label names, vertex data) and the class
structure (members, uniform sequence sets, loop flags); ``Il2c`` and the
pair→class map are reconstructed on load, so the file stays minimal and
can never disagree with itself.

Vertices may be ints, strings, or (nested) tuples of those — everything
the graph generators and dataset stand-ins produce — encoded with a small
tagged codec so round-trips are exact.

Crash safety (PR 7): :func:`save_index` is **atomic** — the document is
written to a same-directory temp file, flushed and fsynced, then moved
over the target with ``os.replace`` — so a crash mid-save (power loss,
kill, injected fsync/rename fault) leaves either the old file or the new
file, never a torn hybrid.  The on-disk form carries a one-line
checksummed header::

    %repro-index-file v1 sha256=<hex digest> bytes=<payload length>

ahead of the JSON payload; :func:`load_index` verifies length and digest
before parsing, raising :class:`~repro.errors.CorruptIndexError` on
truncation, bit corruption, or wrong magic instead of parsing garbage
into a half-built index.  Pre-PR 7 plain-JSON files (no header) remain
loadable, without the integrity check.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.errors import CorruptIndexError, PersistenceError
from repro.graph.digraph import LabeledDigraph, Vertex
from repro.graph.labels import LabelRegistry

__all__ = [
    "CorruptIndexError",
    "PersistenceError",
    "decode_vertex",
    "encode_vertex",
    "load_index",
    "save_index",
]

FORMAT_NAME = "repro-index"
FORMAT_VERSION = 1

#: First bytes of a checksummed index file (the header line's magic).
FILE_MAGIC = "%repro-index-file"


def encode_vertex(vertex: Vertex) -> object:
    """Encode a vertex for JSON: ints/strings raw, tuples tagged."""
    if isinstance(vertex, bool):
        raise PersistenceError(f"unsupported vertex type: {vertex!r}")
    if isinstance(vertex, (int, str)):
        return vertex
    if isinstance(vertex, tuple):
        return {"t": [encode_vertex(part) for part in vertex]}
    raise PersistenceError(f"unsupported vertex type: {type(vertex).__name__}")


def decode_vertex(encoded: object) -> Vertex:
    """Inverse of :func:`encode_vertex`."""
    if isinstance(encoded, (int, str)):
        return encoded
    if isinstance(encoded, dict) and set(encoded) == {"t"}:
        return tuple(decode_vertex(part) for part in encoded["t"])
    raise PersistenceError(f"malformed vertex encoding: {encoded!r}")


def _graph_document(graph: LabeledDigraph) -> dict:
    return {
        "labels": list(graph.registry),
        "vertices": [encode_vertex(v) for v in sorted(graph.vertices(), key=repr)],
        "edges": sorted(
            ([encode_vertex(v), encode_vertex(u), label] for v, u, label in graph.triples()),
            key=repr,
        ),
        "vertex_data": sorted(
            ([encode_vertex(v), graph.vertex_data(v)]
             for v in graph.vertices() if graph.vertex_data(v)),
            key=repr,
        ),
    }


def _graph_from_document(document: dict) -> LabeledDigraph:
    graph = LabeledDigraph(LabelRegistry(document["labels"]))
    for encoded in document["vertices"]:
        graph.add_vertex(decode_vertex(encoded))
    for v, u, label in document["edges"]:
        graph.add_edge(decode_vertex(v), decode_vertex(u), label)
    for encoded, data in document.get("vertex_data", ()):
        graph.set_vertex_data(decode_vertex(encoded), **data)
    return graph


def _classes_document(index) -> list[dict]:
    return [
        {
            "id": class_id,
            "pairs": [
                [encode_vertex(v), encode_vertex(u)]
                for v, u in index._ic2p[class_id]
            ],
            "sequences": sorted(index._class_sequences[class_id]),
            "loop": class_id in index._loop_classes,
        }
        for class_id in sorted(index._ic2p)
    ]


def save_index(index: CPQxIndex | InterestAwareIndex, path: str | Path) -> None:
    """Serialize a built index (and its graph) atomically to ``path``.

    Write-temp / fsync / rename: at no point is the target path in a
    partially written state, so an interrupted save (crash, kill, or an
    injected ``persist.fsync``/``persist.rename`` fault) leaves a
    previous index file at ``path`` untouched.  The temp file lives in
    the target's directory — ``os.replace`` must not cross filesystems —
    and is removed on failure.
    """
    from repro.serve.faults import current_injector

    if isinstance(index, InterestAwareIndex):
        index_type = "iaCPQx"
    elif isinstance(index, CPQxIndex):
        index_type = "CPQx"
    else:
        raise PersistenceError(f"cannot persist {type(index).__name__}")
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "type": index_type,
        "k": index.k,
        "graph": _graph_document(index.graph),
        "classes": _classes_document(index),
    }
    if index_type == "iaCPQx":
        document["interests"] = sorted(index.interests)
    payload = json.dumps(document).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    header = f"{FILE_MAGIC} v{FORMAT_VERSION} sha256={digest} bytes={len(payload)}\n"

    injector = current_injector()
    target = Path(path)
    temp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        with open(temp, "wb") as handle:
            handle.write(header.encode("ascii"))
            handle.write(payload)
            handle.flush()
            if injector is not None:
                injector.fail("persist.fsync")
            os.fsync(handle.fileno())
        if injector is not None:
            injector.fail("persist.rename")
        os.replace(temp, target)
    except BaseException:
        # Leave the previous file at `path` intact; drop the temp.
        with contextlib.suppress(OSError):
            os.unlink(temp)
        raise


def _read_document(path: str | Path) -> dict:
    """Read and integrity-check an index file's JSON document.

    Dispatches on the first bytes: the checksummed header format
    verifies payload length and SHA-256 digest before parsing (raising
    :class:`~repro.errors.CorruptIndexError` on any mismatch); a file
    opening straight into JSON is the pre-PR 7 legacy format, parsed
    without an integrity check; anything else is not an index file.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    magic = FILE_MAGIC.encode("ascii")
    if blob.startswith(magic):
        newline = blob.find(b"\n")
        if newline < 0:
            raise CorruptIndexError(path, "truncated before end of header")
        fields = blob[:newline].decode("ascii", errors="replace").split()
        named = dict(part.split("=", 1) for part in fields[2:] if "=" in part)
        if len(fields) < 4 or "sha256" not in named or "bytes" not in named:
            raise CorruptIndexError(path, f"malformed header {fields!r}")
        if fields[1] != f"v{FORMAT_VERSION}":
            raise PersistenceError(f"{path}: unsupported index file version {fields[1]!r}")
        try:
            expected_bytes = int(named["bytes"])
        except ValueError:
            raise CorruptIndexError(path, f"malformed header {fields!r}") from None
        payload = blob[newline + 1 :]
        if len(payload) < expected_bytes:
            raise CorruptIndexError(
                path, f"truncated: {len(payload)} of {expected_bytes} payload bytes"
            )
        if len(payload) > expected_bytes:
            raise CorruptIndexError(
                path, f"trailing data: {len(payload)} of {expected_bytes} payload bytes"
            )
        if hashlib.sha256(payload).hexdigest() != named["sha256"]:
            raise CorruptIndexError(path, "checksum mismatch (bit corruption)")
        return json.loads(payload.decode("utf-8"))
    if blob.lstrip().startswith(b"{"):
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptIndexError(path, f"malformed JSON: {exc}") from exc
    raise CorruptIndexError(path, "unrecognized magic (not an index file)")


def load_index(path: str | Path) -> CPQxIndex | InterestAwareIndex:
    """Load an index saved by :func:`save_index` or the columnar store.

    Dispatches on the leading magic: a binary zero-copy store file
    (:mod:`repro.store`) opens via ``mmap`` with its columns left on
    disk; otherwise the JSON formats (checksummed header or pre-PR 7
    legacy) parse here.  Either way integrity is checked *before* the
    document is interpreted — a truncated, bit-flipped, or foreign file
    raises :class:`~repro.errors.CorruptIndexError` (a
    :class:`~repro.errors.PersistenceError`) instead of decoding
    garbage.
    """
    from repro.store.format import STORE_MAGIC

    with open(path, "rb") as handle:
        head = handle.read(len(STORE_MAGIC))
    if head == STORE_MAGIC:
        from repro.store.reader import open_store

        return open_store(path)
    document = _read_document(path)
    if document.get("format") != FORMAT_NAME:
        raise PersistenceError(f"{path}: not a {FORMAT_NAME} file")
    if document.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path}: unsupported version {document.get('version')}"
        )
    graph = _graph_from_document(document["graph"])
    # For iaCPQx, Il2c postings are only rebuilt for *live* interests:
    # class sequence records may still carry interests deleted before the
    # save, and resurrecting their postings would serve stale lookups.
    interests: frozenset | None = None
    if document["type"] == "iaCPQx":
        interests = frozenset(tuple(seq) for seq in document["interests"])
    il2c: dict[tuple[int, ...], set[int]] = {}
    ic2p: dict[int, list] = {}
    class_of: dict[tuple, int] = {}
    class_sequences: dict[int, frozenset] = {}
    loop_classes: set[int] = set()
    for entry in document["classes"]:
        class_id = entry["id"]
        pairs = [
            (decode_vertex(v), decode_vertex(u)) for v, u in entry["pairs"]
        ]
        sequences = frozenset(tuple(seq) for seq in entry["sequences"])
        ic2p[class_id] = sorted(pairs, key=repr)
        class_sequences[class_id] = sequences
        for pair in pairs:
            class_of[pair] = class_id
        if entry["loop"]:
            loop_classes.add(class_id)
        for seq in sequences:
            if interests is None or seq in interests:
                il2c.setdefault(seq, set()).add(class_id)
    common = dict(
        graph=graph,
        k=document["k"],
        il2c=il2c,
        ic2p=ic2p,
        class_of=class_of,
        class_sequences=class_sequences,
        loop_classes=loop_classes,
    )
    if document["type"] == "iaCPQx":
        assert interests is not None
        return InterestAwareIndex(interests=interests, **common)
    if document["type"] == "CPQx":
        return CPQxIndex(**common)
    raise PersistenceError(f"{path}: unknown index type {document['type']!r}")
