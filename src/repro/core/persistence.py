"""Saving and loading built indexes (JSON, self-describing).

A built CPQx/iaCPQx is a significant investment (Table IV's construction
times); a downstream deployment wants to build once and reload.  The
format stores the graph (edges, label names, vertex data) and the class
structure (members, uniform sequence sets, loop flags); ``Il2c`` and the
pair→class map are reconstructed on load, so the file stays minimal and
can never disagree with itself.

Vertices may be ints, strings, or (nested) tuples of those — everything
the graph generators and dataset stand-ins produce — encoded with a small
tagged codec so round-trips are exact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.errors import ReproError
from repro.graph.digraph import LabeledDigraph, Vertex
from repro.graph.labels import LabelRegistry

FORMAT_NAME = "repro-index"
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """Raised for malformed or incompatible index files."""


def encode_vertex(vertex: Vertex) -> object:
    """Encode a vertex for JSON: ints/strings raw, tuples tagged."""
    if isinstance(vertex, bool):
        raise PersistenceError(f"unsupported vertex type: {vertex!r}")
    if isinstance(vertex, (int, str)):
        return vertex
    if isinstance(vertex, tuple):
        return {"t": [encode_vertex(part) for part in vertex]}
    raise PersistenceError(f"unsupported vertex type: {type(vertex).__name__}")


def decode_vertex(encoded: object) -> Vertex:
    """Inverse of :func:`encode_vertex`."""
    if isinstance(encoded, (int, str)):
        return encoded
    if isinstance(encoded, dict) and set(encoded) == {"t"}:
        return tuple(decode_vertex(part) for part in encoded["t"])
    raise PersistenceError(f"malformed vertex encoding: {encoded!r}")


def _graph_document(graph: LabeledDigraph) -> dict:
    return {
        "labels": list(graph.registry),
        "vertices": [encode_vertex(v) for v in sorted(graph.vertices(), key=repr)],
        "edges": sorted(
            ([encode_vertex(v), encode_vertex(u), label] for v, u, label in graph.triples()),
            key=repr,
        ),
        "vertex_data": sorted(
            ([encode_vertex(v), graph.vertex_data(v)]
             for v in graph.vertices() if graph.vertex_data(v)),
            key=repr,
        ),
    }


def _graph_from_document(document: dict) -> LabeledDigraph:
    graph = LabeledDigraph(LabelRegistry(document["labels"]))
    for encoded in document["vertices"]:
        graph.add_vertex(decode_vertex(encoded))
    for v, u, label in document["edges"]:
        graph.add_edge(decode_vertex(v), decode_vertex(u), label)
    for encoded, data in document.get("vertex_data", ()):
        graph.set_vertex_data(decode_vertex(encoded), **data)
    return graph


def _classes_document(index) -> list[dict]:
    return [
        {
            "id": class_id,
            "pairs": [
                [encode_vertex(v), encode_vertex(u)]
                for v, u in index._ic2p[class_id]
            ],
            "sequences": sorted(index._class_sequences[class_id]),
            "loop": class_id in index._loop_classes,
        }
        for class_id in sorted(index._ic2p)
    ]


def save_index(index: CPQxIndex | InterestAwareIndex, path: str | Path) -> None:
    """Serialize a built index (and its graph) to a JSON file."""
    if isinstance(index, InterestAwareIndex):
        index_type = "iaCPQx"
    elif isinstance(index, CPQxIndex):
        index_type = "CPQx"
    else:
        raise PersistenceError(f"cannot persist {type(index).__name__}")
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "type": index_type,
        "k": index.k,
        "graph": _graph_document(index.graph),
        "classes": _classes_document(index),
    }
    if index_type == "iaCPQx":
        document["interests"] = sorted(index.interests)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_index(path: str | Path) -> CPQxIndex | InterestAwareIndex:
    """Load an index saved by :func:`save_index`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != FORMAT_NAME:
        raise PersistenceError(f"{path}: not a {FORMAT_NAME} file")
    if document.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path}: unsupported version {document.get('version')}"
        )
    graph = _graph_from_document(document["graph"])
    # For iaCPQx, Il2c postings are only rebuilt for *live* interests:
    # class sequence records may still carry interests deleted before the
    # save, and resurrecting their postings would serve stale lookups.
    interests: frozenset | None = None
    if document["type"] == "iaCPQx":
        interests = frozenset(tuple(seq) for seq in document["interests"])
    il2c: dict[tuple[int, ...], set[int]] = {}
    ic2p: dict[int, list] = {}
    class_of: dict[tuple, int] = {}
    class_sequences: dict[int, frozenset] = {}
    loop_classes: set[int] = set()
    for entry in document["classes"]:
        class_id = entry["id"]
        pairs = [
            (decode_vertex(v), decode_vertex(u)) for v, u in entry["pairs"]
        ]
        sequences = frozenset(tuple(seq) for seq in entry["sequences"])
        ic2p[class_id] = sorted(pairs, key=repr)
        class_sequences[class_id] = sequences
        for pair in pairs:
            class_of[pair] = class_id
        if entry["loop"]:
            loop_classes.add(class_id)
        for seq in sequences:
            if interests is None or seq in interests:
                il2c.setdefault(seq, set()).add(class_id)
    common = dict(
        graph=graph,
        k=document["k"],
        il2c=il2c,
        ic2p=ic2p,
        class_of=class_of,
        class_sequences=class_sequences,
        loop_classes=loop_classes,
    )
    if document["type"] == "iaCPQx":
        assert interests is not None
        return InterestAwareIndex(interests=interests, **common)
    if document["type"] == "CPQx":
        return CPQxIndex(**common)
    raise PersistenceError(f"{path}: unknown index type {document['type']!r}")
