"""Path and label-sequence enumeration: ``P≤k`` and ``L≤k(v, u)``.

Sec. III-A defines ``P≤k`` as the s-t pairs connected by a path of length
at most ``k`` and ``L≤k(v, u)`` as the set of label sequences (over the
inverse-extended label set) along such paths.  This module materializes
both, plus the per-pair variant used by incremental maintenance.

The hot implementations run in the interned code space (dense vertex ids
packed two-to-a-word, see :mod:`repro.core.pairset`): frontiers are sets
of 64-bit pair codes and adjacency comes from the graph's
:class:`repro.graph.interner.InternedView`.  The original tuple-returning
functions remain as the public API, decoding at the boundary — consumers
that want the columnar form call the ``*_codes`` variants directly.

Conventions:

* only *non-empty* paths (length 1..k) are enumerated; the length-0
  identity path is handled by the loop flag / IDENTITY operator, never
  stored (the paper likewise does not store unconnected identity pairs);
* sequences are tuples of signed label ids (:mod:`repro.graph.labels`).
"""

from __future__ import annotations

from array import array

from repro.core import kernels
from repro.core.pairset import PairSet
from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.graph.interner import ID_BITS, ID_HIGH_MASK, ID_MASK, InternedView
from repro.graph.labels import LabelSeq



def enumerate_sequences_codes(
    graph: LabeledDigraph, k: int
) -> dict[LabelSeq, PairSet]:
    """All label sequences of length 1..k with their s-t pair columns.

    This is the content of the language-unaware path index of [14]
    (Sec. III-C) and the per-pair feed of Algorithm 2.  Built level by
    level in code space: length-``i`` relations extend length-``i-1``
    relations by one extended edge over the interned adjacency view.
    Cost is ``O(d · Σ_seq |pairs(seq)|)``.
    """
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    view = graph.interned()
    interner = graph.interner
    if kernels.active_backend() == "numpy":
        nk = kernels.backend_module()
        columns = nk.enumerate_sequence_columns(view, k)
        # None = label alphabet too wide for the per-label probe sweep
        # (see MAX_ENUMERATION_LABELS); fall through to the pure loop.
        if columns is not None:
            return {
                seq: PairSet.from_sorted_codes(nk.to_column(column), interner)
                for seq, column in columns.items()
            }
    out = view.out
    sequences: dict[LabelSeq, set[int]] = {}
    frontier: dict[LabelSeq, set[int]] = {}
    for vid, uid, lab in view.triples:
        frontier.setdefault((lab,), set()).add((vid << ID_BITS) | uid)
        frontier.setdefault((-lab,), set()).add((uid << ID_BITS) | vid)
    for seq, codes in frontier.items():
        sequences[seq] = set(codes)
    for _ in range(1, k):
        extended: dict[LabelSeq, set[int]] = {}
        for seq, codes in frontier.items():
            for code in codes:
                v_high = code & ID_HIGH_MASK
                for lab, targets in out[code & ID_MASK].items():
                    bucket = extended.setdefault(seq + (lab,), set())
                    for uid in targets:
                        bucket.add(v_high | uid)
        for seq, codes in extended.items():
            existing = sequences.get(seq)
            if existing is None:
                sequences[seq] = codes
            else:
                existing.update(codes)
        frontier = extended
        if not frontier:
            break
    return {
        seq: PairSet.from_codes(codes, interner)
        for seq, codes in sequences.items()
    }


def enumerate_sequences(graph: LabeledDigraph, k: int) -> dict[LabelSeq, set[Pair]]:
    """Tuple-decoded view of :func:`enumerate_sequences_codes`."""
    return {
        seq: set(pairs)
        for seq, pairs in enumerate_sequences_codes(graph, k).items()
    }


def invert_sequences_codes(
    sequences: dict[LabelSeq, PairSet]
) -> dict[int, frozenset[LabelSeq]]:
    """Transpose sequence→column into the per-code ``L≤k(v, u)`` map."""
    per_code: dict[int, set[LabelSeq]] = {}
    for seq, pairs in sequences.items():
        for code in pairs.iter_codes():
            entry = per_code.get(code)
            if entry is None:
                per_code[code] = {seq}
            else:
                entry.add(seq)
    return {code: frozenset(seqs) for code, seqs in per_code.items()}


def invert_sequences(
    sequences: dict[LabelSeq, set[Pair]]
) -> dict[Pair, frozenset[LabelSeq]]:
    """Transpose sequence→pairs into the per-pair ``L≤k(v, u)`` map."""
    per_pair: dict[Pair, set[LabelSeq]] = {}
    for seq, pairs in sequences.items():
        for pair in pairs:
            per_pair.setdefault(pair, set()).add(seq)
    return {pair: frozenset(seqs) for pair, seqs in per_pair.items()}


def reachable_codes(graph: LabeledDigraph, k: int) -> PairSet:
    """``P≤k`` (non-empty paths) as a sorted code column.

    Level ``i`` extends only the pairs *discovered* at level ``i-1``:
    a pair already known extends to nothing new (its extensions were
    explored when it first entered the frontier), so the frontier is
    filtered against the accumulated set before traversal.
    """
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    view = graph.interned()
    if kernels.active_backend() == "numpy":
        return PairSet.from_sorted_codes(
            kernels.backend_module().reachable_codes(view, k), graph.interner
        )
    out = view.out
    codes: set[int] = set()
    for vid, uid, _ in view.triples:
        codes.add((vid << ID_BITS) | uid)
        codes.add((uid << ID_BITS) | vid)
    frontier = set(codes)
    for _ in range(1, k):
        extended: set[int] = set()
        for code in frontier:
            v_high = code & ID_HIGH_MASK
            for targets in out[code & ID_MASK].values():
                for uid in targets:
                    extended.add(v_high | uid)
        frontier = extended - codes
        codes.update(frontier)
        if not frontier:
            break
    return PairSet.from_codes(codes, graph.interner)


def reachable_pairs(graph: LabeledDigraph, k: int) -> set[Pair]:
    """``P≤k`` restricted to non-empty paths (length 1..k)."""
    return set(reachable_codes(graph, k))


def sequence_codes_from_sources(
    view: InternedView, sources, seq: LabelSeq
) -> array:
    """``⟦seq⟧G`` restricted to paths starting in ``sources``, as a
    sorted code column.

    The single traversal implementation behind both the full relation
    (:func:`sequence_relation_codes`, ``sources = live ids``) and the
    sharded parallel sweep (:mod:`repro.core.parallel`, ``sources`` =
    one shard) — the sharded == serial contract depends on them never
    diverging.  ``seq`` must be non-empty.
    """
    if kernels.active_backend() == "numpy":
        return kernels.backend_module().sequence_codes_from_sources(
            view, sources, seq
        )
    out = view.out
    first = seq[0]
    codes: set[int] = set()
    for vid in sources:
        targets = out[vid].get(first)
        if targets:
            v_high = vid << ID_BITS
            for uid in targets:
                codes.add(v_high | uid)
    for label in seq[1:]:
        if not codes:
            break
        extended: set[int] = set()
        for code in codes:
            targets = out[code & ID_MASK].get(label)
            if targets:
                v_high = code & ID_HIGH_MASK
                for uid in targets:
                    extended.add(v_high | uid)
        codes = extended
    return array("q", sorted(codes))


def sequence_relation_codes(graph: LabeledDigraph, seq: LabelSeq) -> PairSet:
    """``⟦seq⟧G`` as a sorted code column (identity for the empty seq).

    The columnar counterpart of
    :meth:`repro.graph.digraph.LabeledDigraph.sequence_relation`, used
    by the interest-aware builders.
    """
    view = graph.interned()
    interner = graph.interner
    if not seq:
        return PairSet.from_codes(
            ((vid << ID_BITS) | vid for vid in view.live_ids), interner
        )
    return PairSet.from_sorted_codes(
        sequence_codes_from_sources(view, view.live_ids, seq), interner
    )


def sequence_targets_from_source(
    view: InternedView, source: int, k: int
) -> dict[LabelSeq, set[int]]:
    """All ``(sequence, reachable-target-ids)`` rows from one source.

    One BFS over the ``(vertex-id, sequence)`` product space serves
    *every* pair anchored at ``source``: the representative-based index
    construction groups its per-class ``L≤k`` derivations by the
    representative's source vertex and pays for this table once per
    group instead of once per class.
    """
    out = view.out
    table: dict[LabelSeq, set[int]] = {}
    frontier: dict[LabelSeq, set[int]] = {(): {source}}
    for _ in range(k):
        next_frontier: dict[LabelSeq, set[int]] = {}
        for seq, ids in frontier.items():
            for mid in ids:
                for lab, targets in out[mid].items():
                    extended = seq + (lab,)
                    entry = next_frontier.get(extended)
                    if entry is None:
                        next_frontier[extended] = set(targets)
                    else:
                        entry.update(targets)
        table.update(next_frontier)
        frontier = next_frontier
        if not frontier:
            break
    return table


def label_sequences_for_pair(
    graph: LabeledDigraph, source: Vertex, target: Vertex, k: int
) -> frozenset[LabelSeq]:
    """``L≤k(source, target)`` for one pair, without global enumeration.

    Used by lazy maintenance (Sec. IV-E), which must re-derive the label
    sequences of the (few) pairs a graph update touches.  Deliberately
    walks the live vertex-keyed adjacency rather than the interned
    snapshot: every maintenance step mutates the graph, so routing this
    through :meth:`LabeledDigraph.interned` would rebuild the full
    O(V+E) view per update and defeat the paper's touched-ball cost
    model.  Explores the ``(vertex, sequence)`` product space,
    ``O(d^k)``.  (Bulk construction instead batches
    :func:`sequence_targets_from_source` over the snapshot.)
    """
    found: set[LabelSeq] = set()
    frontier: dict[LabelSeq, set[Vertex]] = {(): {source}}
    for _ in range(k):
        next_frontier: dict[LabelSeq, set[Vertex]] = {}
        for seq, vertices in frontier.items():
            for m in vertices:
                for lab, targets in graph.out_items(m):
                    entry = next_frontier.setdefault(seq + (lab,), set())
                    entry.update(targets)
        for seq, vertices in next_frontier.items():
            if target in vertices:
                found.add(seq)
        frontier = next_frontier
        if not frontier:
            break
    return frozenset(found)


def gamma(graph: LabeledDigraph, k: int) -> float:
    """The paper's ``γ``: average ``|L≤k(v, u)|`` over pairs in ``P≤k``."""
    sequences = enumerate_sequences_codes(graph, k)
    per_code = invert_sequences_codes(sequences)
    if not per_code:
        return 0.0
    return sum(len(seqs) for seqs in per_code.values()) / len(per_code)
