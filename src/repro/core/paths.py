"""Path and label-sequence enumeration: ``P≤k`` and ``L≤k(v, u)``.

Sec. III-A defines ``P≤k`` as the s-t pairs connected by a path of length
at most ``k`` and ``L≤k(v, u)`` as the set of label sequences (over the
inverse-extended label set) along such paths.  This module materializes
both, plus the per-pair variant used by incremental maintenance.

Conventions:

* only *non-empty* paths (length 1..k) are enumerated; the length-0
  identity path is handled by the loop flag / IDENTITY operator, never
  stored (the paper likewise does not store unconnected identity pairs);
* sequences are tuples of signed label ids (:mod:`repro.graph.labels`).
"""

from __future__ import annotations

from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.graph.labels import LabelSeq


def enumerate_sequences(graph: LabeledDigraph, k: int) -> dict[LabelSeq, set[Pair]]:
    """All label sequences of length 1..k with their s-t pair sets.

    This is the content of the language-unaware path index of [14]
    (Sec. III-C) and the per-pair feed of Algorithm 2.  Built level by
    level: length-``i`` relations extend length-``i-1`` relations by one
    extended edge.  Cost is ``O(d · Σ_seq |pairs(seq)|)``.
    """
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    sequences: dict[LabelSeq, set[Pair]] = {}
    frontier: dict[LabelSeq, set[Pair]] = {}
    for v, u, lab in graph.triples():
        frontier.setdefault((lab,), set()).add((v, u))
        frontier.setdefault((-lab,), set()).add((u, v))
    sequences.update(frontier)
    for _ in range(1, k):
        extended: dict[LabelSeq, set[Pair]] = {}
        for seq, pairs in frontier.items():
            for v, m in pairs:
                for lab, targets in graph.out_items(m):
                    bucket = extended.setdefault(seq + (lab,), set())
                    for u in targets:
                        bucket.add((v, u))
        for seq, pairs in extended.items():
            sequences.setdefault(seq, set()).update(pairs)
        frontier = extended
        if not frontier:
            break
    return sequences


def invert_sequences(sequences: dict[LabelSeq, set[Pair]]) -> dict[Pair, frozenset[LabelSeq]]:
    """Transpose sequence→pairs into the per-pair ``L≤k(v, u)`` map."""
    per_pair: dict[Pair, set[LabelSeq]] = {}
    for seq, pairs in sequences.items():
        for pair in pairs:
            per_pair.setdefault(pair, set()).add(seq)
    return {pair: frozenset(seqs) for pair, seqs in per_pair.items()}


def reachable_pairs(graph: LabeledDigraph, k: int) -> set[Pair]:
    """``P≤k`` restricted to non-empty paths (length 1..k)."""
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    pairs: set[Pair] = set()
    frontier: set[Pair] = set()
    for v, u, _ in graph.triples():
        frontier.add((v, u))
        frontier.add((u, v))
    pairs.update(frontier)
    for _ in range(1, k):
        new_frontier: set[Pair] = set()
        for v, m in frontier:
            for _, targets in graph.out_items(m):
                for u in targets:
                    pair = (v, u)
                    if pair not in pairs:
                        new_frontier.add(pair)
        frontier = {
            (v, u)
            for v, m in frontier
            for _, targets in graph.out_items(m)
            for u in targets
        }
        pairs.update(frontier)
        if not frontier:
            break
    return pairs


def label_sequences_for_pair(
    graph: LabeledDigraph, source: Vertex, target: Vertex, k: int
) -> frozenset[LabelSeq]:
    """``L≤k(source, target)`` for one pair, without global enumeration.

    Used by lazy maintenance (Sec. IV-E), which must re-derive the label
    sequences of the (few) pairs a graph update touches, and by the
    representative-based construction of ``Il2c`` (one call per class).
    Explores the ``(vertex, sequence)`` product space, ``O(d^k)``.
    """
    found: set[LabelSeq] = set()
    frontier: dict[LabelSeq, set[Vertex]] = {(): {source}}
    for _ in range(k):
        next_frontier: dict[LabelSeq, set[Vertex]] = {}
        for seq, vertices in frontier.items():
            for m in vertices:
                for lab, targets in graph.out_items(m):
                    entry = next_frontier.setdefault(seq + (lab,), set())
                    entry.update(targets)
        for seq, vertices in next_frontier.items():
            if target in vertices:
                found.add(seq)
        frontier = next_frontier
        if not frontier:
            break
    return frozenset(found)


def gamma(graph: LabeledDigraph, k: int) -> float:
    """The paper's ``γ``: average ``|L≤k(v, u)|`` over pairs in ``P≤k``."""
    sequences = enumerate_sequences(graph, k)
    per_pair = invert_sequences(sequences)
    if not per_pair:
        return 0.0
    return sum(len(seqs) for seqs in per_pair.values()) / len(per_pair)
