"""Concurrency primitives for the serving path.

One building block lives here: a writer-preferring readers/writer lock.
:class:`repro.db.GraphDatabase` holds one per session — query serving
(:meth:`~repro.db.GraphDatabase.serve_batch`) runs under the shared
side, :meth:`~repro.db.GraphDatabase.update` under the exclusive side —
so a batch of graph mutations is never interleaved with an in-flight
evaluation and every reader observes the engine at an update boundary.

Writer preference matters for the intended workload: a serving fleet of
reader threads would otherwise starve the (rare) update writer forever.
Readers that arrive while a writer is waiting queue up behind it; the
lock is not reentrant, which the session facade never needs.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager


class RWLock:
    """A writer-preferring readers/writer lock.

    Any number of readers may hold the lock concurrently; a writer holds
    it alone.  A waiting writer blocks *new* readers, so updates cannot
    be starved by a busy serving pool.  Not reentrant.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # shared (reader) side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until the lock can be held in shared mode."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one shared hold."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read():`` — shared critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # exclusive (writer) side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        """Block until the lock can be held exclusively."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write():`` — exclusive critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, "
            f"writer={self._writer_active}, waiting={self._writers_waiting})"
        )
