"""Workload-driven interest selection under a size budget (Sec. VII).

The paper's second future-work item: "investigate practical methods for
scalable index construction that adaptively controls interests and k".
This module implements the interests half: given a query log and a byte
budget, pick the interest set that maximizes expected lookup benefit.

Model:

* every multi-label sequence ``s`` appearing in the log is a candidate;
* its *benefit* is ``frequency(s) × joins_saved(s)`` — how many join
  steps a single LOOKUP replaces, weighted by how often the workload
  asks for it;
* its *cost* is the bytes iaCPQx spends storing it: one posting per
  matching s-t pair (8 bytes) plus key bytes — estimated from the actual
  relation size on the graph;
* selection is greedy by benefit density (benefit / cost), the standard
  knapsack heuristic — and single-label sequences are always free picks
  because iaCPQx mandates them anyway.

:func:`advise_k` covers the other half: the smallest ``k`` that lets
every workload sequence be answered with the fewest splits, bounded by a
build-cost ceiling (Sec. VI-D: "we can generally select the maximum
length of interests").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelSeq
from repro.query.ast import CPQ, label_sequences_in


@dataclass(frozen=True)
class InterestRecommendation:
    """Outcome of the advisor: the chosen interests plus accounting."""

    interests: frozenset[LabelSeq]
    estimated_bytes: int
    candidate_count: int
    covered_frequency: float
    skipped: tuple[LabelSeq, ...]

    def coverage(self) -> float:
        """Fraction of weighted workload lookups served by the selection."""
        return self.covered_frequency


def sequence_frequencies(queries: list[CPQ], k: int) -> Counter:
    """Multi-label (length 2..k) sequence usage counts across a workload.

    Sequences longer than ``k`` contribute their length-``k`` windows,
    since those are the chunks an index of parameter ``k`` could serve.
    """
    counts: Counter = Counter()
    for query in queries:
        for seq in label_sequences_in(query):
            if len(seq) <= 1:
                continue
            if len(seq) <= k:
                counts[seq] += 1
            else:
                for start in range(0, len(seq) - k + 1):
                    counts[seq[start:start + k]] += 1
    return counts


def estimate_interest_bytes(graph: LabeledDigraph, seq: LabelSeq) -> int:
    """Bytes iaCPQx spends on one interest: 8 per matching pair + key."""
    return 4 * len(seq) + 8 * len(graph.sequence_relation(seq))


def recommend_interests(
    graph: LabeledDigraph,
    queries: list[CPQ],
    k: int = 2,
    budget_bytes: int | None = None,
) -> InterestRecommendation:
    """Pick the best interest set for a workload under a byte budget.

    With ``budget_bytes=None`` every workload sequence is selected (the
    paper's default experimental setup).  Budgeted selection is greedy by
    benefit density; ties broken deterministically.
    """
    counts = sequence_frequencies(queries, k)
    total_frequency = float(sum(counts.values())) or 1.0
    candidates = []
    for seq, frequency in counts.items():
        cost = estimate_interest_bytes(graph, seq)
        joins_saved = len(seq) - 1
        benefit = frequency * joins_saved
        density = benefit / max(1, cost)
        candidates.append((density, benefit, seq, cost, frequency))
    candidates.sort(key=lambda item: (-item[0], -item[1], repr(item[2])))

    chosen: set[LabelSeq] = set()
    skipped: list[LabelSeq] = []
    spent = 0
    covered = 0.0
    for _, _, seq, cost, frequency in candidates:
        if budget_bytes is not None and spent + cost > budget_bytes:
            skipped.append(seq)
            continue
        chosen.add(seq)
        spent += cost
        covered += frequency
    return InterestRecommendation(
        interests=frozenset(chosen),
        estimated_bytes=spent,
        candidate_count=len(candidates),
        covered_frequency=covered / total_frequency if candidates else 1.0,
        skipped=tuple(skipped),
    )


def advise_k(
    queries: list[CPQ],
    max_k: int = 4,
) -> int:
    """The smallest ``k`` covering the workload's longest lookup chain.

    Sec. VI-D: "for deciding appropriate k, we can generally select the
    maximum length of interests"; diameters beyond ``max_k`` are clamped
    (longer chains split, as the paper's own Fig. 4 does).
    """
    longest = 1
    for query in queries:
        for seq in label_sequences_in(query):
            longest = max(longest, len(seq))
    return min(longest, max_k)
