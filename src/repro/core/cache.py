"""A tiny bounded LRU cache for memoized query results.

Used by :class:`repro.core.executor.EngineBase` to memoize
``evaluate``/``count`` across queries.  The cache carries a ``token``
— the (graph version, engine epoch) pair current when it was created —
so the owner can detect staleness with one tuple comparison and rebuild
instead of serving results computed against an older graph.
"""

from __future__ import annotations

from typing import Hashable, Iterator


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Relies on dict insertion order: a hit re-inserts the key at the
    back, eviction pops from the front.
    """

    __slots__ = ("capacity", "token", "_data")

    def __init__(self, capacity: int, token: object = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Opaque freshness token (owner-defined; compared by equality).
        self.token = token
        self._data: dict[Hashable, object] = {}

    def get(self, key: Hashable) -> object | None:
        """The cached value, refreshed to most-recently-used; else None."""
        data = self._data
        value = data.get(key)
        if value is not None or key in data:
            del data[key]
            data[key] = value
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.capacity:
            del data[next(iter(data))]
        data[key] = value

    def __setitem__(self, key: Hashable, value: object) -> None:
        self.put(key, value)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def __repr__(self) -> str:
        return f"LRUCache({len(self._data)}/{self.capacity})"
