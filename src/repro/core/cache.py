"""A tiny bounded LRU cache for memoized query results — thread-safe.

Used by :class:`repro.core.executor.EngineBase` to memoize
``evaluate``/``count`` across queries.  The cache carries a ``token``
— the (graph version, engine epoch) pair current when it was created —
so the owner can detect staleness with one tuple comparison and rebuild
instead of serving results computed against an older graph.

Staleness is handled by *replacement*, never mutation: a cache whose
token no longer matches is dropped wholesale and a fresh one installed
(:meth:`EngineBase._token_cache`), so an in-flight reader holding the
old object keeps a consistent — merely doomed — snapshot.  Within one
cache, every operation holds a per-instance mutex: the recency
bookkeeping (delete + reinsert on hit, evict on insert) is a multi-step
dict mutation that the concurrent serving path
(:meth:`repro.db.GraphDatabase.serve_batch`) would otherwise corrupt.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterator


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Relies on dict insertion order: a hit re-inserts the key at the
    back, eviction pops from the front.  All operations are atomic
    under a per-instance lock, so any number of threads may share one
    cache (get/put races then only cost a duplicated computation,
    never a corrupted table).
    """

    __slots__ = ("capacity", "token", "_data", "_lock")

    def __init__(self, capacity: int, token: object = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Opaque freshness token (owner-defined; compared by equality).
        self.token = token
        self._data: dict[Hashable, object] = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> object | None:
        """The cached value, refreshed to most-recently-used; else None."""
        with self._lock:
            data = self._data
            value = data.get(key)
            if value is not None or key in data:
                del data[key]
                data[key] = value
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        with self._lock:
            data = self._data
            if key in data:
                del data[key]
            elif len(data) >= self.capacity:
                del data[next(iter(data))]
            data[key] = value

    def __setitem__(self, key: Hashable, value: object) -> None:
        self.put(key, value)

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    def __repr__(self) -> str:
        return f"LRUCache({len(self)}/{self.capacity})"
