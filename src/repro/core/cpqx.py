"""The CPQ-aware path index **CPQx** (Sec. IV, Definitions 4.2/4.3).

CPQx is an inverted index in two parts:

* ``Il2c`` — label sequence (length ≤ k) → set of class identifiers whose
  pairs' ``L≤k`` sets contain that sequence;
* ``Ic2p`` — class identifier → sorted column of member s-t pair codes
  (:class:`repro.core.pairset.PairSet`).

Classes are the CPQ_k-equivalence classes computed by
:mod:`repro.core.partition`.  A lookup touches class ids instead of
pairs; conjunctions intersect class-id sets (Prop. 4.1); pairs are only
materialized when a JOIN or the query root demands them — and then as
sorted code columns combined without decoding (classes are disjoint, so
expansion is a concatenation plus one C-level sort over pre-sorted runs).

Construction (Algorithm 2) supports two strategies:

* ``"representative"`` (default) — exploit label-sequence uniformity
  (Def. 4.2): compute ``L≤k`` once per class from a representative pair;
* ``"per-pair"`` — the paper's literal Algorithm 2 loop over every pair
  and each of its sequences; used by the construction ablation bench to
  show the two produce identical indexes at different cost.

The index retains a reference to its graph and supports the paper's lazy
maintenance (Sec. IV-E) through :meth:`insert_edge` / :meth:`delete_edge`.
"""

from __future__ import annotations

from repro.core.executor import EngineBase, Result
from repro.core.pairset import PairSet
from repro.core.parallel import derive_class_sequences, derive_class_sequences_parallel, resolve_workers
from repro.core.partition import compute_partition_codes
from repro.core.paths import enumerate_sequences_codes, invert_sequences_codes
from repro.errors import IndexBuildError, QueryDiameterError
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.graph.interner import ID_BITS, ID_MASK
from repro.graph.labels import LabelSeq
from repro.plan.planner import Splitter, greedy_splitter


def _adopt_ic2p(
    ic2p: dict[int, PairSet] | dict[int, list[Pair]], graph: LabeledDigraph
) -> dict[int, PairSet]:
    """Accept ``Ic2p`` in columnar or legacy list-of-tuples form."""
    interner = graph.interner
    return {
        class_id: (
            members
            if isinstance(members, PairSet)
            else PairSet.from_vertex_pairs(members, interner)
        )
        for class_id, members in ic2p.items()
    }


def _adopt_class_of(
    class_of: dict[int, int] | dict[Pair, int], graph: LabeledDigraph
) -> dict[int, int]:
    """Accept the pair→class map keyed by codes (ints) or vertex tuples."""
    if not class_of or isinstance(next(iter(class_of)), int):
        return dict(class_of)
    encode = graph.interner.encode_pair
    return {encode(pair): class_id for pair, class_id in class_of.items()}


class CPQxIndex(EngineBase):
    """The CPQ-aware path index of Sec. IV."""

    name = "CPQx"

    def __init__(
        self,
        graph: LabeledDigraph,
        k: int,
        il2c: dict[LabelSeq, set[int]],
        ic2p: dict[int, PairSet] | dict[int, list[Pair]],
        class_of: dict[int, int] | dict[Pair, int] | None,
        class_sequences: dict[int, frozenset[LabelSeq]],
        loop_classes: set[int],
    ) -> None:
        self.graph = graph
        self.k = k
        self._il2c = il2c
        self._ic2p = _adopt_ic2p(ic2p, graph)
        # ``class_of=None`` defers the pair→class map: the query path
        # never reads it, so a store-opened engine skips building it
        # (it materializes from the columns on first maintenance or
        # introspection access — see the ``_class_of`` property).
        self._class_of_map: dict[int, int] | None = (
            None if class_of is None else _adopt_class_of(class_of, graph)
        )
        self._class_sequences = class_sequences
        self._loop_classes = loop_classes
        self._next_class = max(ic2p, default=-1) + 1

    @property
    def _class_of(self) -> dict[int, int]:
        """The pair-code → class map, built lazily from the columns.

        Classes partition the pair universe, so the inversion is exact;
        once built (or assigned) the dict is cached and mutated in place
        by the maintenance path like any eager map.
        """
        mapping = self._class_of_map
        if mapping is None:
            mapping = {
                code: class_id
                for class_id, members in self._ic2p.items()
                for code in members.iter_codes()
            }
            self._class_of_map = mapping
        return mapping

    @_class_of.setter
    def _class_of(self, value: dict[int, int] | dict[Pair, int]) -> None:
        self._class_of_map = _adopt_class_of(value, self.graph)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: LabeledDigraph,
        k: int = 2,
        il2c_method: str = "representative",
        workers: int | str = 1,
    ) -> CPQxIndex:
        """Build CPQx over ``graph`` with path-length bound ``k``.

        Runs Algorithm 1 (partition) then Algorithm 2 (index assembly),
        entirely in the interned code space.  ``workers`` > 1 (or
        ``"auto"``) shards *both* stages along the interned
        source-vertex axis — the per-level k-path-bisimulation
        refinement over persistent shard workers
        (:func:`repro.core.partition.compute_partition_codes`, serial
        below its pair-count threshold) and the per-representative
        ``L≤k`` derivation over a process pool
        (:mod:`repro.core.parallel`) — producing an identical index.
        """
        if k < 1:
            raise IndexBuildError(f"k must be >= 1, got {k}")
        num_workers = resolve_workers(workers)
        partition = compute_partition_codes(graph, k, workers=num_workers)
        ic2p = partition.blocks
        view = graph.interned()

        class_sequences: dict[int, frozenset[LabelSeq]] = {}
        if il2c_method == "representative":
            # One L≤k BFS per *source vertex*, shared by every class whose
            # representative pair starts there (Def. 4.2 uniformity makes
            # any member's derivation the class's derivation).
            by_source: dict[int, list[tuple[int, int]]] = {}
            for class_id, members in ic2p.items():
                rep = members.codes[0]
                by_source.setdefault(rep >> ID_BITS, []).append(
                    (class_id, rep & ID_MASK)
                )
            class_sequences = (
                derive_class_sequences_parallel(graph, k, by_source, num_workers)
                if num_workers > 1 and len(by_source) > 1
                else derive_class_sequences(view, k, by_source.items())
            )
        elif il2c_method == "per-pair":
            per_code = invert_sequences_codes(enumerate_sequences_codes(graph, k))
            class_of = partition.class_of
            for code, seqs in per_code.items():
                class_id = class_of[code]
                known = class_sequences.get(class_id)
                if known is None:
                    class_sequences[class_id] = seqs
                elif known != seqs:  # pragma: no cover - uniformity invariant
                    raise IndexBuildError(
                        f"class {class_id} is not label-sequence uniform"
                    )
        else:
            raise IndexBuildError(f"unknown il2c_method {il2c_method!r}")

        il2c: dict[LabelSeq, set[int]] = {}
        for class_id, seqs in class_sequences.items():
            for seq in sorted(seqs):
                il2c.setdefault(seq, set()).add(class_id)

        return cls(
            graph=graph,
            k=k,
            il2c=il2c,
            ic2p=ic2p,
            class_of=partition.class_of,
            class_sequences=class_sequences,
            loop_classes=set(partition.loop_classes),
        )

    # ------------------------------------------------------------------
    # executor interface
    # ------------------------------------------------------------------
    def splitter(self) -> Splitter:
        """CPQx splits label sequences greedily at length ``k`` (Fig. 4)."""
        return greedy_splitter(self.k)

    def lookup(self, seq: LabelSeq) -> Result:
        """``Il2c(seq)`` — the class identifiers of a label sequence."""
        if len(seq) > self.k:
            raise QueryDiameterError(
                f"sequence of length {len(seq)} exceeds index parameter k={self.k}"
            )
        return Result.of_classes(self._il2c.get(seq, ()))

    def expand_classes(self, classes: frozenset[int]) -> PairSet:
        """``∪ Ic2p(c)`` over ``classes``: concatenate the disjoint
        columns and re-sort (C Timsort over pre-sorted runs)."""
        ic2p = self._ic2p
        return PairSet.union_disjoint(
            (ic2p[class_id] for class_id in classes if class_id in ic2p),
            self.graph.interner,
        )

    def loop_classes_of(self, classes: frozenset[int]) -> frozenset[int]:
        """IDENTITY on class sets: keep classes whose pairs are loops."""
        return frozenset(classes & self._loop_classes)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """``|C|`` — the number of CPQ_k-equivalence classes."""
        return len(self._ic2p)

    @property
    def num_pairs(self) -> int:
        """``|P≤k|`` restricted to non-empty paths."""
        return len(self._class_of)

    @property
    def num_sequences(self) -> int:
        """Number of distinct label sequences keyed in ``Il2c``."""
        return len(self._il2c)

    def class_of(self, pair: Pair) -> int | None:
        """The class identifier of a pair, or None if not indexed."""
        interner = self.graph.interner
        vid = interner.get_id(pair[0])
        uid = interner.get_id(pair[1])
        if vid is None or uid is None:
            return None
        return self._class_of.get((vid << ID_BITS) | uid)

    def class_size(self, class_id: int) -> int:
        """``|Ic2p(c)|`` without decoding (COUNT pushdown reads this)."""
        members = self._ic2p.get(class_id)
        return len(members) if members is not None else 0

    def pairs_of_class(self, class_id: int) -> list[Pair]:
        """``Ic2p(c)`` decoded to a deterministically sorted list."""
        members = self._ic2p.get(class_id)
        if members is None:
            return []
        return sorted(members, key=repr)

    def codes_of_class(self, class_id: int) -> PairSet:
        """``Ic2p(c)`` as its columnar pair set."""
        members = self._ic2p.get(class_id)
        if members is None:
            return PairSet.empty(self.graph.interner)
        return members

    def sequences_of_class(self, class_id: int) -> frozenset[LabelSeq]:
        """The (uniform) ``L≤k`` set shared by every pair of the class."""
        return self._class_sequences.get(class_id, frozenset())

    def classes(self) -> list[int]:
        """All class identifiers."""
        return list(self._ic2p)

    def gamma(self) -> float:
        """Average ``|L≤k(v,u)|`` over indexed pairs (the paper's γ)."""
        if not self._class_of:
            return 0.0
        total = sum(
            len(self._class_sequences[c]) * len(members)
            for c, members in self._ic2p.items()
        )
        return total / len(self._class_of)

    def size_bytes(self) -> int:
        """Deterministic size model with 32-bit ids (Thm. 4.2's accounting).

        ``Il2c``: 4 bytes per label in each key plus 4 per posted class id;
        ``Ic2p``: 4 bytes per class key plus 8 per stored s-t pair (one
        64-bit packed code — exactly what the columns store).
        """
        il2c_bytes = sum(
            4 * len(seq) + 4 * len(classes) for seq, classes in self._il2c.items()
        )
        ic2p_bytes = sum(4 + 8 * len(pairs) for pairs in self._ic2p.values())
        return il2c_bytes + ic2p_bytes

    # ------------------------------------------------------------------
    # maintenance (Sec. IV-E); implementation in repro.core.maintenance
    # ------------------------------------------------------------------
    def insert_edge(self, v: Vertex, u: Vertex, label: object) -> None:
        """Insert a forward edge and lazily update the index."""
        from repro.core.maintenance import insert_edge

        insert_edge(self, v, u, label)

    def delete_edge(self, v: Vertex, u: Vertex, label: object) -> None:
        """Delete a forward edge and lazily update the index."""
        from repro.core.maintenance import delete_edge

        delete_edge(self, v, u, label)

    def change_edge_label(
        self, v: Vertex, u: Vertex, old_label: object, new_label: object
    ) -> None:
        """Relabel an edge and lazily update the index (Sec. IV-E)."""
        from repro.core.maintenance import change_edge_label

        change_edge_label(self, v, u, old_label, new_label)

    def delete_vertex(self, v: Vertex) -> None:
        """Remove a vertex with its edges and lazily update the index."""
        from repro.core.maintenance import delete_vertex

        delete_vertex(self, v)

    def insert_vertex(self, v: Vertex, edges: list[tuple] = ()) -> None:
        """Add a vertex (plus incident edges) and lazily update the index."""
        from repro.core.maintenance import insert_vertex

        insert_vertex(self, v, edges)

    def describe_classes(self, max_pairs: int = 4) -> str:
        """Render the equivalence classes the way Fig. 3 presents them.

        One line per class: the member pairs (truncated to ``max_pairs``)
        followed by the class's uniform label-sequence set.  Classes are
        ordered by their smallest member for stable output.
        """
        registry = self.graph.registry
        lines = []
        decoded = {
            class_id: self.pairs_of_class(class_id) for class_id in self._ic2p
        }
        ordered = sorted(decoded.items(), key=lambda item: repr(item[1][0]))
        for class_id, members in ordered:
            shown = ", ".join(f"({v},{u})" for v, u in members[:max_pairs])
            if len(members) > max_pairs:
                shown += ", ..."
            sequences = sorted(
                self._class_sequences[class_id], key=lambda s: (len(s), s)
            )
            labels = "{" + ", ".join(
                "".join(registry.name_of(lab) for lab in seq) for seq in sequences
            ) + "}"
            lines.append(f"c={class_id}: {shown} {labels}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CPQxIndex(k={self.k}, |C|={self.num_classes}, "
            f"|P|={self.num_pairs}, |Il2c|={self.num_sequences})"
        )
