"""Executable specification of k-path-bisimulation (Definition 4.1).

:mod:`repro.core.partition` implements the paper's *bottom-up
construction* (Sec. IV-C), which deliberately deviates from the formal
definition.  This module implements Definition 4.1 **literally** — the
recursive, quantifier-heavy characterization — so the test-suite can
exercise the theory itself:

* Theorem 4.1: if ``(v,u) ≈k (x,y)`` then the pairs agree on membership
  in ``⟦q⟧G`` for *every* ``q ∈ CPQk`` (property-tested on random
  graphs/queries);
* bisimilar pairs share their ``L≤k`` label-sequence sets (a corollary:
  label sequences are CPQs).

The recursion is exponential in ``k`` and quadratic in midpoints — fine
for the ≤10-vertex graphs the tests use, and exactly why the paper needed
the polynomial bottom-up algorithm for real graphs.

Definition recap (``(v,u) ≈k (x,y)``):

1. ``v = u`` iff ``x = y``;
2. if ``k > 0``: the extended edge labels between ``(v,u)`` and between
   ``(x,y)`` coincide (conditions 2a/2b collapse to one set equality
   under the inverse extension);
3. if ``k > 1``: every midpoint decomposition ``(v,m),(m,u) ∈ P≤k-1`` is
   mimicked by some ``(x,m'),(m',y) ∈ P≤k-1`` with both halves
   ``≈k-1``-related, and vice versa.

``P≤r`` here includes the length-0 path (``v`` reaches itself), per the
formal development in Fletcher et al. [13].
"""

from __future__ import annotations

from repro.core.paths import reachable_pairs
from repro.graph.digraph import LabeledDigraph, Pair, Vertex


def _connected_within(graph: LabeledDigraph, pairs: set[Pair], v: Vertex, u: Vertex) -> bool:
    """``(v,u) ∈ P≤r`` with the length-0 path included."""
    return v == u or (v, u) in pairs


def k_path_bisimilar(
    graph: LabeledDigraph,
    pair_a: Pair,
    pair_b: Pair,
    k: int,
) -> bool:
    """Decide ``pair_a ≈k pair_b`` by structural recursion on Def. 4.1."""
    reach: dict[int, set[Pair]] = {
        r: reachable_pairs(graph, r) for r in range(1, max(k, 1) + 1)
    }
    memo: dict[tuple[Pair, Pair, int], bool] = {}
    return _bisimilar(graph, pair_a, pair_b, k, reach, memo)


def _bisimilar(
    graph: LabeledDigraph,
    pair_a: Pair,
    pair_b: Pair,
    k: int,
    reach: dict[int, set[Pair]],
    memo: dict[tuple[Pair, Pair, int], bool],
) -> bool:
    key = (pair_a, pair_b, k)
    cached = memo.get(key)
    if cached is not None:
        return cached
    v, u = pair_a
    x, y = pair_b
    result = True
    # condition 1: loop agreement
    if (v == u) != (x == y):
        result = False
    # condition 2: extended edge-label agreement
    if result and k > 0 and graph.edge_labels(v, u) != graph.edge_labels(x, y):
        result = False
    # condition 3: midpoint mimicry, both directions
    if result and k > 1:
        result = _midpoints_mimicked(
            graph, (v, u), (x, y), k, reach, memo
        ) and _midpoints_mimicked(graph, (x, y), (v, u), k, reach, memo)
    memo[key] = result
    return result


def _midpoints_mimicked(
    graph: LabeledDigraph,
    pair_a: Pair,
    pair_b: Pair,
    k: int,
    reach: dict[int, set[Pair]],
    memo: dict[tuple[Pair, Pair, int], bool],
) -> bool:
    v, u = pair_a
    x, y = pair_b
    shorter = reach[k - 1]
    for m in graph.vertices():
        if not (
            _connected_within(graph, shorter, v, m)
            and _connected_within(graph, shorter, m, u)
        ):
            continue
        mimicked = False
        for m_prime in graph.vertices():
            if not (
                _connected_within(graph, shorter, x, m_prime)
                and _connected_within(graph, shorter, m_prime, y)
            ):
                continue
            if _bisimilar(graph, (v, m), (x, m_prime), k - 1, reach, memo) and _bisimilar(
                graph, (m, u), (m_prime, y), k - 1, reach, memo
            ):
                mimicked = True
                break
        if not mimicked:
            return False
    return True


def bisimulation_classes(graph: LabeledDigraph, k: int) -> list[list[Pair]]:
    """Partition the non-empty-path pairs by pairwise Def. 4.1 checks.

    Quadratic in ``|P≤k|`` — specification-grade, test-sized graphs only.
    ``≈k`` is an equivalence relation (reflexive/symmetric by symmetry of
    the definition; transitivity is exercised by the property tests), so
    greedy grouping against one representative per class is sound.
    """
    pairs = sorted(reachable_pairs(graph, k), key=repr)
    reach = {r: reachable_pairs(graph, r) for r in range(1, max(k, 1) + 1)}
    memo: dict[tuple[Pair, Pair, int], bool] = {}
    classes: list[list[Pair]] = []
    for pair in pairs:
        for members in classes:
            if _bisimilar(graph, pair, members[0], k, reach, memo):
                members.append(pair)
                break
        else:
            classes.append([pair])
    return classes
