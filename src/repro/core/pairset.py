"""Columnar s-t pair sets: sorted ``array('q')`` columns of packed ids.

Every structure the paper builds — ``P≤k``, the per-sequence relations,
``Ic2p`` postings, executor intermediates — is a set of s-t pairs.  The
seed kept them as Python sets of ``(v, u)`` tuples over arbitrary
vertices; :class:`PairSet` instead packs interned ids (see
:mod:`repro.graph.interner`) into 64-bit codes ``v_id << 32 | u_id``
with two physical states:

* **frozen** — one sorted, duplicate-free ``array('q')`` column: 8
  bytes per pair in a contiguous buffer.  This is the storage form
  (index postings, enumeration output) and supports merge-based
  union/intersection/difference, switching to galloping (binary probes
  into the larger column) when the operands are size-skewed — the
  classic adaptive strategy of sorted-posting systems;
* **lazy** — a plain ``set`` of codes, produced by operators whose
  output order is not yet needed (composition, hash-path algebra).
  Sorting an operator's output costs more than every downstream
  consumer that doesn't need order, so the sort is deferred: the column
  materializes (once, cached) only when something asks for it.

Composition — the relational join on the shared middle vertex — runs as
a hash join grouped on the packed middle id, from either physical
state.  It beats the seed executor's per-call dict-of-vertex-lists
rebuild: grouping keys are single machine-width ints, never tuples of
objects, and the output stays a lazy code set.

Iteration decodes to original ``(v, u)`` vertex pairs through the
interner's reverse lookup, so a ``PairSet`` can stand in for the old
``frozenset[Pair]`` anywhere (equality and the binary set operators
accept plain sets of vertex tuples too).  The old set-of-tuples API is
one :meth:`to_set` call away for consumers that do not migrate.

A third backing joined in PR 8: a frozen column may be a read-only
``memoryview`` cast to ``'q'`` over an ``mmap``-ed store file
(:mod:`repro.store`) instead of an owned ``array('q')``.  Both backings
are sorted int64 sequences supporting ``len``/indexing/``bisect`` *and*
the buffer protocol, so the set-algebra kernels run on either — zero
copy under the numpy backend, which views them through
``np.frombuffer``.  Mapped sets pickle by converting to an owned column
(:meth:`__reduce__`) — a ``memoryview`` cannot cross a process boundary.

The algebra itself lives in :mod:`repro.core.kernels` (PR 10): frozen
operands dispatch to the active backend — the original merge/gallop
loops (:mod:`repro.core.kernels.pure`) or their vectorized numpy twins —
while lazy operands stay on hash-based set operations here, where
deferring the sort is the whole point.  Both backends return
bit-identical columns; only the physical state of *lazy-producing*
operators may differ (the numpy compose returns its output born frozen,
since the vectorized join sorts as a side effect of deduplication).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator

from repro.core import kernels
from repro.core.kernels.pure import extend_from, owned_copy, owned_slice
from repro.graph.digraph import Pair
from repro.graph.interner import ID_BITS, ID_MASK, VertexInterner

_EMPTY = array("q")


class PairSet:
    """An immutable set of packed ``(v_id, u_id)`` pair codes.

    Physically either a frozen sorted column, a lazy code set, or (after
    first column access on a lazy set) both.  All mutation is
    copy-on-write; cached representations never change observable state.
    """

    __slots__ = ("_codes", "_codeset", "_interner")

    def __init__(
        self,
        codes: array | None,
        interner: VertexInterner,
        codeset: set[int] | None = None,
    ) -> None:
        """Wrap a **sorted, duplicate-free** column and/or a code set.

        Use the ``from_*`` constructors unless the invariant is already
        guaranteed by construction.
        """
        self._codes = codes
        self._codeset = codeset
        self._interner = interner

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, interner: VertexInterner) -> PairSet:
        """The empty pair set."""
        return cls(_EMPTY, interner)

    @classmethod
    def from_codes(cls, codes: Iterable[int], interner: VertexInterner) -> PairSet:
        """Build a frozen column from arbitrary codes (sorts + dedups)."""
        return cls(kernels.from_codes(codes), interner)

    @classmethod
    def from_sorted_codes(cls, codes: array, interner: VertexInterner) -> PairSet:
        """Adopt an already sorted duplicate-free column (no copy)."""
        return cls(codes, interner)

    @classmethod
    def from_mapped(cls, view: memoryview, interner: VertexInterner) -> PairSet:
        """Adopt a read-only mapped column (``'q'``-cast memoryview).

        The store reader's constructor: ``view`` is a zero-copy slice
        into an ``mmap``-ed store file holding the sorted duplicate-free
        codes.  The view pins its backing map alive; the set behaves
        exactly like an owned-column set (and converts to one when it
        must — pickling, point updates).
        """
        if view.format != "q":
            raise ValueError(f"mapped column must be 'q'-cast, got {view.format!r}")
        return cls(view, interner)

    @classmethod
    def from_code_set(cls, codes: set[int], interner: VertexInterner) -> PairSet:
        """Adopt a code set lazily — the column sorts on first demand."""
        return cls(None, interner, codeset=codes)

    @classmethod
    def from_vertex_pairs(
        cls, pairs: Iterable[Pair], interner: VertexInterner
    ) -> PairSet:
        """Encode original-vertex pairs through the interner."""
        id_of = interner.id_of
        return cls.from_codes(
            ((id_of(v) << ID_BITS) | id_of(u) for v, u in pairs), interner
        )

    @classmethod
    def union_disjoint(
        cls, parts: Iterable["PairSet"], interner: VertexInterner
    ) -> PairSet:
        """K-way union of pairwise-disjoint frozen sets (``Ic2p`` classes).

        Disjointness (classes partition the pair universe) means no
        dedup pass is needed: concatenate the columns and re-sort — the
        C sort exploits the pre-sorted runs.
        """
        columns = [part.codes for part in parts if part]
        if not columns:
            return cls.empty(interner)
        if len(columns) == 1:
            return cls(columns[0], interner)
        return cls(kernels.concat_sorted(columns), interner)

    # ------------------------------------------------------------------
    # physical representations
    # ------------------------------------------------------------------
    @property
    def codes(self) -> array:
        """The sorted code column (materialized and cached on demand)."""
        codes = self._codes
        if codes is None:
            codes = self._codes = kernels.column_from_set(self._codeset)
        return codes

    @property
    def interner(self) -> VertexInterner:
        """The interner that decodes this column's ids."""
        return self._interner

    def code_set(self) -> set[int]:
        """The codes as a set (the lazy state's native form; else built)."""
        if self._codeset is not None:
            return self._codeset
        return set(self._codes)

    def _any_codes(self) -> set[int] | array:
        """Whichever representation exists, for order-free scans."""
        return self._codeset if self._codeset is not None else self._codes

    def is_frozen(self) -> bool:
        """True when the sorted column is already materialized."""
        return self._codes is not None

    def is_mapped(self) -> bool:
        """True when the column is a view into a mapped store file."""
        return type(self._codes) is memoryview

    def __reduce__(self) -> tuple:
        """Pickle support: a mapped column ships as an owned copy.

        ``memoryview`` cannot cross a process boundary; everything else
        round-trips as-is (the snapshot-shipping fallback path).
        """
        codes = self._codes
        if type(codes) is memoryview:
            codes = owned_copy(codes)
        return (PairSet, (codes, self._interner, self._codeset))

    def iter_codes(self) -> Iterator[int]:
        """Iterate the packed codes in ascending column order."""
        return iter(self.codes)

    def contains_code(self, code: int) -> bool:
        """Membership on the packed code (hash or binary search)."""
        if self._codeset is not None:
            return code in self._codeset
        return kernels.contains(self._codes, code)

    # ------------------------------------------------------------------
    # set protocol (decoded boundary)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        backing = self._codeset if self._codeset is not None else self._codes
        return len(backing)

    def __bool__(self) -> bool:
        backing = self._codeset if self._codeset is not None else self._codes
        return bool(backing)

    def __iter__(self) -> Iterator[Pair]:
        vertices = self._interner._vertices
        for code in self.codes:
            yield (vertices[code >> ID_BITS], vertices[code & ID_MASK])

    def __contains__(self, pair: object) -> bool:
        if not isinstance(pair, tuple) or len(pair) != 2:
            return False
        get_id = self._interner.get_id
        vid = get_id(pair[0])
        uid = get_id(pair[1])
        if vid is None or uid is None:
            return False
        return self.contains_code((vid << ID_BITS) | uid)

    def to_set(self) -> frozenset[Pair]:
        """Decode into the seed's set-of-tuples representation."""
        vertices = self._interner._vertices
        return frozenset(
            (vertices[code >> ID_BITS], vertices[code & ID_MASK])
            for code in self._any_codes()
        )

    def first_pairs(self, limit: int) -> list[Pair]:
        """The ``limit`` smallest-coded pairs, decoded (deterministic)."""
        vertices = self._interner._vertices
        return [
            (vertices[code >> ID_BITS], vertices[code & ID_MASK])
            for code in self.codes[:limit]
        ]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PairSet):
            if self._interner is other._interner:
                return self.code_set() == other.code_set()
            return self.to_set() == other.to_set()
        if isinstance(other, (set, frozenset)):
            return self.to_set() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.to_set())

    # ------------------------------------------------------------------
    # set algebra — merge-based on frozen columns, hash-based when an
    # operand is still a lazy code set
    # ------------------------------------------------------------------
    def _coerce(self, other: object) -> PairSet | None:
        if isinstance(other, PairSet) and other._interner is self._interner:
            return other
        return None

    def _both_frozen(self, peer: PairSet) -> bool:
        return self._codes is not None and peer._codes is not None

    def __and__(self, other: object) -> PairSet | frozenset[Pair]:
        peer = self._coerce(other)
        if peer is not None:
            if self._both_frozen(peer):
                return PairSet(
                    kernels.intersect(self._codes, peer._codes), self._interner
                )
            return PairSet.from_code_set(
                self.code_set() & peer.code_set(), self._interner
            )
        if isinstance(other, (set, frozenset, PairSet)):
            return self.to_set() & (
                other.to_set() if isinstance(other, PairSet) else frozenset(other)
            )
        return NotImplemented

    __rand__ = __and__

    def __or__(self, other: object) -> PairSet | frozenset[Pair]:
        peer = self._coerce(other)
        if peer is not None:
            if self._both_frozen(peer):
                return PairSet(
                    kernels.union(self._codes, peer._codes), self._interner
                )
            return PairSet.from_code_set(
                self.code_set() | peer.code_set(), self._interner
            )
        if isinstance(other, (set, frozenset, PairSet)):
            return self.to_set() | (
                other.to_set() if isinstance(other, PairSet) else frozenset(other)
            )
        return NotImplemented

    __ror__ = __or__

    def __sub__(self, other: object) -> PairSet | frozenset[Pair]:
        peer = self._coerce(other)
        if peer is not None:
            if self._both_frozen(peer):
                return PairSet(
                    kernels.difference(self._codes, peer._codes), self._interner
                )
            return PairSet.from_code_set(
                self.code_set() - peer.code_set(), self._interner
            )
        if isinstance(other, (set, frozenset, PairSet)):
            return self.to_set() - (
                other.to_set() if isinstance(other, PairSet) else frozenset(other)
            )
        return NotImplemented

    def __rsub__(self, other: object) -> frozenset[Pair]:
        if isinstance(other, (set, frozenset)):
            return frozenset(other) - self.to_set()
        return NotImplemented

    def intersection(self, other: PairSet) -> PairSet:
        """Intersection (alias of ``&`` for PairSets)."""
        result = self & other
        assert isinstance(result, PairSet)
        return result

    def union(self, other: PairSet) -> PairSet:
        """Union (alias of ``|`` for PairSets)."""
        result = self | other
        assert isinstance(result, PairSet)
        return result

    def difference(self, other: PairSet) -> PairSet:
        """Difference (alias of ``-`` for PairSets)."""
        result = self - other
        assert isinstance(result, PairSet)
        return result

    # ------------------------------------------------------------------
    # point updates (persistent: return a new column)
    # ------------------------------------------------------------------
    def with_code(self, code: int) -> PairSet:
        """A new set with ``code`` inserted (no-op copy if present)."""
        codes = self.codes
        pos = bisect_left(codes, code)
        if pos < len(codes) and codes[pos] == code:
            return self
        updated = owned_slice(codes, 0, pos)
        updated.append(code)
        extend_from(updated, codes, pos)
        return PairSet(updated, self._interner)

    def without_code(self, code: int) -> PairSet:
        """A new set with ``code`` removed; raises KeyError if absent."""
        codes = self.codes
        pos = bisect_left(codes, code)
        if pos == len(codes) or codes[pos] != code:
            raise KeyError(code)
        updated = owned_slice(codes, 0, pos)
        extend_from(updated, codes, pos + 1)
        return PairSet(updated, self._interner)

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def loops(self) -> PairSet:
        """The subset with ``v == u`` (the ``∩ id`` filter)."""
        filtered = kernels.loops(self)
        if isinstance(filtered, set):
            return PairSet.from_code_set(filtered, self._interner)
        return PairSet(filtered, self._interner)

    def compose(self, other: PairSet, loops_only: bool = False) -> PairSet:
        """Relational composition ``{(v, u) | (v, m) ∈ self, (m, u) ∈ other}``.

        A single-pass hash join on the *packed ids*: the right column is
        grouped once by its packed source id (one machine-width int per
        key — never a dict of vertex objects rebuilt per call, which is
        what the seed executor did), then the left column streams
        through it.  The frozen right column is naturally clustered by
        source, so grouping is a run-length scan of the sorted codes.
        The output stays a lazy code set — its sort is deferred until
        (and unless) a consumer needs the column.  ``loops_only=True``
        fuses the trailing ``∩ id`` (the paper's JOIN ID operator),
        probing only for ``(m, v)`` on the right instead of emitting the
        full cross product.

        Under the numpy backend the join is sort-merge instead of hash
        (the right column is clustered by source, so a ``searchsorted``
        range replaces the probe) and its output arrives *born frozen* —
        the vectorized dedup is a sort — rather than lazy.  Same value
        either way.
        """
        interner = self._interner
        if not self or not other:
            return PairSet.empty(interner)
        joined = kernels.compose(self, other, loops_only)
        if isinstance(joined, set):
            return PairSet.from_code_set(joined, interner)
        return PairSet(joined, interner)

    def __repr__(self) -> str:
        state = "frozen" if self._codes is not None else "lazy"
        return f"PairSet({len(self)} pairs, {state})"
