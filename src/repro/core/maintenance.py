"""Lazy index maintenance under graph updates (Sec. IV-E).

The paper's strategy, reproduced here:

1. enumerate the s-t pairs *affected* by the touched edge — those with a
   path of length ≤ k through it, found by breadth-first expansion from
   the edge's endpoints (the extended graph is symmetric, so one BFS per
   endpoint yields both travel directions);
2. recompute ``L≤k`` only for those pairs;
3. move every pair whose sequence set changed into a **fresh** class —
   never merged into an existing class, even if it is now k-path-bisimilar
   to one (Prop. 4.2 shows query answers stay exact on such refinements;
   Table VII measures the resulting size growth).

The patches operate on the index's columnar internals — pairs are
addressed by packed code and class postings rebuilt as new sorted
columns — but all traversal (affected balls, per-pair ``L≤k``) walks
the live vertex-keyed adjacency: the interned snapshot is rebuilt per
graph version, and every maintenance step mutates the graph, so using
it here would cost O(V+E) per update instead of the touched ball.

Vertex insertion/deletion and label changes reduce to edge operations,
exactly as the paper notes.
"""

from __future__ import annotations

from collections import deque

from repro.core.cpqx import CPQxIndex
from repro.core.pairset import PairSet
from repro.core.paths import label_sequences_for_pair
from repro.errors import MaintenanceError
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.graph.labels import LabelSeq


def insert_edge(index: CPQxIndex, v: Vertex, u: Vertex, label: object) -> None:
    """Add edge ``(v, u, label)`` to the graph and lazily patch the index."""
    index.graph.add_edge(v, u, label)
    affected = affected_pairs(index.graph, v, u, index.k)
    reclassify(index, affected)


def delete_edge(index: CPQxIndex, v: Vertex, u: Vertex, label: object) -> None:
    """Remove edge ``(v, u, label)`` from the graph and patch the index.

    The affected-pair ball is computed *before* removal (paths through the
    edge exist only in the pre-deletion graph); re-classification then
    checks for alternative paths on the post-deletion graph, which is the
    paper's "check whether there are alternative paths" step.
    """
    affected = affected_pairs(index.graph, v, u, index.k)
    try:
        index.graph.remove_edge(v, u, label)
    except Exception as exc:  # normalize to the maintenance error type
        raise MaintenanceError(str(exc)) from exc
    reclassify(index, affected)


def change_edge_label(
    index, v: Vertex, u: Vertex, old_label: object, new_label: object
) -> None:
    """Relabel an edge (Sec. IV-E's "label change" update).

    Realized, as the paper describes, as a deletion followed by an
    insertion; both patches share the same affected-pair ball so the cost
    is comparable to a single edge update.  Dispatches through the
    index's own edge methods, so it serves CPQx and iaCPQx alike.
    """
    index.delete_edge(v, u, old_label)
    index.insert_edge(v, u, new_label)


def delete_vertex(index, v: Vertex) -> None:
    """Remove a vertex and lazily patch the index (Sec. IV-E).

    "In the vertex deletion, we delete all edges that connect to the
    deleted vertex, and then delete the vertex."
    """
    graph = index.graph
    if not graph.has_vertex(v):
        raise MaintenanceError(f"unknown vertex {v!r}")
    incident = [
        (a, b, label)
        for a, b, label in graph.triples()
        if v in (a, b)
    ]
    for a, b, label in incident:
        index.delete_edge(a, b, label)
    graph.remove_vertex(v)


def insert_vertex(index, v: Vertex, edges: list[tuple] = ()) -> None:
    """Add a vertex with optional incident edges and patch the index.

    ``edges`` entries are ``(source, target, label)`` triples that must
    touch ``v`` on at least one side.
    """
    index.graph.add_vertex(v)
    for a, b, label in edges:
        if v not in (a, b):
            raise MaintenanceError(
                f"edge {(a, b, label)!r} does not touch inserted vertex {v!r}"
            )
        index.insert_edge(a, b, label)


def affected_pairs(graph: LabeledDigraph, v: Vertex, u: Vertex, k: int) -> set[Pair]:
    """Pairs whose ``L≤k`` may involve the edge ``(v, u)`` in either direction.

    A path of length ≤ k through the edge decomposes as
    ``x →* v → u →* y`` with prefix+suffix length ≤ k-1 (or the mirrored
    decomposition through the inverse edge), so the affected set is built
    from distance balls of radius ``k-1`` around both endpoints.  The
    balls walk the live vertex-keyed adjacency — not the interned
    snapshot, which every maintenance step would otherwise rebuild in
    full after its graph mutation — and pairs are encoded for the class
    bookkeeping only afterwards.
    """
    ball_v = _distance_ball(graph, v, k - 1)
    ball_u = _distance_ball(graph, u, k - 1)
    affected: set[Pair] = set()
    budget = k - 1
    for x, dx in ball_v.items():
        for y, dy in ball_u.items():
            if dx + dy <= budget:
                affected.add((x, y))  # uses v --l--> u
                affected.add((y, x))  # uses u --l⁻¹--> v
    return affected


def _distance_ball(
    graph: LabeledDigraph, center: Vertex, radius: int
) -> dict[Vertex, int]:
    """BFS distances ≤ radius over the (symmetric) extended adjacency."""
    distances: dict[Vertex, int] = {center: 0}
    queue: deque[tuple[Vertex, int]] = deque([(center, 0)])
    while queue:
        vertex, dist = queue.popleft()
        if dist == radius:
            continue
        for _, targets in graph.out_items(vertex):
            for neighbor in targets:
                if neighbor not in distances:
                    distances[neighbor] = dist + 1
                    queue.append((neighbor, dist + 1))
    return distances


def reclassify(index: CPQxIndex, pairs: set[Pair]) -> None:
    """Recompute ``L≤k`` for ``pairs`` and move changed pairs to new classes.

    Changed pairs with identical new sequence sets (and matching loop
    flags) are grouped into one fresh class per group; classes emptied by
    the removal are garbage collected from both structures.
    """
    graph = index.graph
    encode = graph.interner.encode_pair
    regrouped: dict[tuple[frozenset[LabelSeq], bool], list[int]] = {}
    # Vertex pairs hash by string, so set order is salted per run; sort
    # (key=repr: vertices are only Hashable) so fresh class ids assigned
    # per group below are deterministic.
    for pair in sorted(pairs, key=repr):
        code = encode(pair)
        new_seqs = label_sequences_for_pair(graph, pair[0], pair[1], index.k)
        old_class = index._class_of.get(code)
        old_seqs = (
            index._class_sequences[old_class]
            if old_class is not None
            else frozenset()
        )
        if new_seqs == old_seqs:
            continue
        if old_class is not None:
            _remove_code_from_class(index, code, old_class)
        if new_seqs:
            key = (new_seqs, pair[0] == pair[1])
            regrouped.setdefault(key, []).append(code)
        else:
            index._class_of.pop(code, None)
    for (seqs, is_loop), members in regrouped.items():
        _create_class(index, seqs, is_loop, members)


def _remove_code_from_class(index: CPQxIndex, code: int, class_id: int) -> None:
    members = index._ic2p[class_id].without_code(code)
    index._class_of.pop(code, None)
    if members:
        index._ic2p[class_id] = members
        return
    for seq in index._class_sequences[class_id]:
        postings = index._il2c.get(seq)
        if postings is not None:
            postings.discard(class_id)
            if not postings:
                del index._il2c[seq]
    del index._ic2p[class_id]
    del index._class_sequences[class_id]
    index._loop_classes.discard(class_id)


def _create_class(
    index: CPQxIndex,
    seqs: frozenset[LabelSeq],
    is_loop: bool,
    members: list[int],
) -> int:
    class_id = index._next_class
    index._next_class += 1
    index._ic2p[class_id] = PairSet.from_codes(members, index.graph.interner)
    index._class_sequences[class_id] = seqs
    for code in members:
        index._class_of[code] = class_id
    if is_loop:
        index._loop_classes.add(class_id)
    for seq in seqs:
        index._il2c.setdefault(seq, set()).add(class_id)
    return class_id
