"""Conjunctive queries (basic graph patterns) over CPQ indexes.

Sec. II argues that "every CQ can be evaluated in terms of its CPQ
sub-queries", and Sec. VII's third future-work item asks for CPQ-aware
indexes inside a standard query pipeline ("queries expressed in practical
languages such as SPARQL and Cypher can use our indexes as part of a
physical execution plan").  This module implements that pipeline stage:

1. a :class:`ConjunctiveQuery` is a set of triple patterns over variables
   and constants with a projection list (a SPARQL BGP);
2. :func:`collapse_chains` rewrites maximal runs through non-projected,
   degree-2 variables into **CPQ label sequences** — each run becomes one
   index-served sub-query instead of a cascade of joins;
3. :func:`evaluate_cq` materializes every remaining binary relation
   through the supplied engine (CPQx, iaCPQx, Path, BFS...) and joins
   them with constraint-propagating backtracking.

Under homomorphic semantics (the paper's setting) the rewrite is exact:
an interior chain variable that is neither projected nor repeated can be
existentially eliminated, which is precisely what a CPQ join does.

The concrete BGP syntax accepted by :func:`parse_bgp`::

    ?x follows ?y . ?y visits ?b . ?x visits ?b

Terms starting with ``?`` are variables, everything else is a vertex
constant; predicates may carry the ``^-`` inverse suffix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError
from repro.graph.digraph import Vertex
from repro.query.ast import sequence_query

#: A term is a variable name (``"?x"``) or a constant vertex.
Term = object


def is_variable(term: Term) -> bool:
    """Variables are strings starting with ``?``."""
    return isinstance(term, str) and term.startswith("?")


@dataclass(frozen=True)
class TriplePattern:
    """One BGP edge: ``subject --predicate--> object``.

    ``predicate`` is a signed label id (negative = inverse traversal).
    """

    subject: Term
    predicate: int
    object: Term

    def normalized(self) -> TriplePattern:
        """Flip inverse predicates so stored patterns are forward-labeled."""
        if self.predicate < 0:
            return TriplePattern(self.object, -self.predicate, self.subject)
        return self


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunction of triple patterns with a projection."""

    patterns: tuple[TriplePattern, ...]
    projection: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.patterns:
            raise QuerySyntaxError("conjunctive query needs at least one pattern")
        variables = self.variables()
        for name in self.projection:
            if name not in variables:
                raise QuerySyntaxError(f"projected variable {name} not in patterns")

    def variables(self) -> set[str]:
        """All variable names used by the patterns."""
        names: set[str] = set()
        for pattern in self.patterns:
            for term in (pattern.subject, pattern.object):
                if is_variable(term):
                    names.add(term)
        return names


def parse_bgp(
    text: str,
    projection: tuple[str, ...],
    registry,
) -> ConjunctiveQuery:
    """Parse ``"?x follows ?y . ?y visits ?b"`` into a ConjunctiveQuery."""
    patterns: list[TriplePattern] = []
    for raw in text.split("."):
        chunk = raw.strip()
        if not chunk:
            continue
        parts = chunk.split()
        if len(parts) != 3:
            raise QuerySyntaxError(f"triple pattern needs 3 terms: {chunk!r}")
        subject, predicate_name, obj = parts
        predicate = registry.id_of(predicate_name)
        patterns.append(TriplePattern(
            subject if subject.startswith("?") else _parse_constant(subject),
            predicate,
            obj if obj.startswith("?") else _parse_constant(obj),
        ))
    return ConjunctiveQuery(tuple(patterns), projection)


def _parse_constant(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


# ---------------------------------------------------------------------------
# chain collapsing: CQ → CPQ sub-queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Relation:
    """A binary constraint between two terms with a label sequence."""

    left: Term
    right: Term
    sequence: tuple[int, ...]


def collapse_chains(cq: ConjunctiveQuery) -> list[_Relation]:
    """Rewrite eliminable chain variables into label sequences.

    A variable is *eliminable* when it is not projected, occurs in exactly
    two patterns, and those two patterns give it degree 2 without a self
    loop.  Each maximal run of eliminable variables collapses into one
    relation carrying the concatenated (direction-normalized) sequence —
    the CPQ sub-query the index will answer in one go.
    """
    relations = [
        _Relation(p.subject, p.object, (p.predicate,)) for p in cq.patterns
    ]
    projected = set(cq.projection)

    def occurrences(rels: list[_Relation], term: Term) -> list[int]:
        return [
            idx for idx, rel in enumerate(rels)
            if rel.left == term or rel.right == term
        ]

    changed = True
    while changed:
        changed = False
        variables = {
            term
            for rel in relations
            for term in (rel.left, rel.right)
            if is_variable(term) and term not in projected
        }
        for variable in sorted(variables):
            occurrence = occurrences(relations, variable)
            if len(occurrence) != 2:
                continue
            first, second = (relations[i] for i in occurrence)
            if first.left == first.right or second.left == second.right:
                continue  # self loop: variable is structurally constrained
            # orient both relations so they read ... -> variable -> ...
            if first.right != variable:
                first = _Relation(
                    first.right, first.left,
                    tuple(-lab for lab in reversed(first.sequence)),
                )
            if second.left != variable:
                second = _Relation(
                    second.right, second.left,
                    tuple(-lab for lab in reversed(second.sequence)),
                )
            merged = _Relation(
                first.left, second.right, first.sequence + second.sequence
            )
            relations = [
                rel for i, rel in enumerate(relations) if i not in occurrence
            ]
            relations.append(merged)
            changed = True
            break
    return [_canonical(rel) for rel in relations]


def _canonical(relation: _Relation) -> _Relation:
    """Prefer the forward reading of a collapsed relation.

    A relation and its flip (inverse sequence, swapped terms) constrain
    the same assignments; orient toward the reading with fewer inverse
    labels so rewrites are deterministic and index lookups hit the
    forward-label postings.
    """
    negatives = sum(1 for label in relation.sequence if label < 0)
    if 2 * negatives > len(relation.sequence):
        return _Relation(
            relation.right,
            relation.left,
            tuple(-label for label in reversed(relation.sequence)),
        )
    return relation


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

def evaluate_cq(cq: ConjunctiveQuery, engine) -> frozenset[tuple]:
    """Evaluate a conjunctive query, serving chain runs from ``engine``.

    ``engine`` is any CPQ engine of this library (its ``evaluate`` accepts
    a CPQ expression); the collapsed relations are materialized through
    it, then joined by backtracking over the variables with candidate
    propagation.  Returns tuples ordered like ``cq.projection``.
    """
    relations = collapse_chains(cq)
    materialized: list[tuple[Term, Term, frozenset]] = []
    for relation in relations:
        pairs = engine.evaluate(sequence_query(relation.sequence))
        materialized.append((relation.left, relation.right, frozenset(pairs)))

    variables = sorted(
        {
            term
            for left, right, _ in materialized
            for term in (left, right)
            if is_variable(term)
        }
    )
    # most-constrained-first ordering
    variables.sort(
        key=lambda name: -sum(
            1 for left, right, _ in materialized if name in (left, right)
        )
    )
    results: set[tuple] = set()
    binding: dict[str, Vertex] = {}

    def value_of(term: Term) -> object:
        return binding.get(term, term) if is_variable(term) else term

    def candidates_for(variable: str) -> set | None:
        found: set | None = None
        for left, right, pairs in materialized:
            if left == variable and not (is_variable(right) and right not in binding):
                target = value_of(right)
                values = {v for v, u in pairs if u == target}
            elif right == variable and not (is_variable(left) and left not in binding):
                source = value_of(left)
                values = {u for v, u in pairs if v == source}
            elif variable in (left, right):
                side = 0 if left == variable else 1
                values = {pair[side] for pair in pairs}
            else:
                continue
            found = values if found is None else found & values
            if not found:
                return set()
        return found

    def satisfied() -> bool:
        return all(
            (value_of(left), value_of(right)) in pairs
            for left, right, pairs in materialized
        )

    def backtrack(depth: int) -> None:
        if depth == len(variables):
            if satisfied():
                results.add(tuple(binding[name] for name in cq.projection))
            return
        variable = variables[depth]
        candidates = candidates_for(variable)
        if candidates is None:
            candidates = set(engine.graph.vertices())
        for vertex in sorted(candidates, key=repr):
            binding[variable] = vertex
            backtrack(depth + 1)
        binding.pop(variable, None)

    backtrack(0)
    return frozenset(results)
