"""Index integrity verification.

A deployment that maintains an index through long update streams (or
loads one from disk) wants a cheap way to prove the structure still
satisfies the invariants query correctness rests on (DESIGN.md §4.2):

* **coverage** — the index stores exactly the pairs connected by a
  non-empty path of length ≤ k (CPQx) / matching some interest (iaCPQx);
* **uniformity** — every class's pairs share the class's label-sequence
  set, and agree on loop-ness with the loop-class registry;
* **consistency** — ``Il2c`` postings, ``Ic2p`` members, and the
  pair→class map mutually agree, with no dangling entries.

:func:`verify_index` re-derives ground truth from the graph and returns a
:class:`ValidationReport`; the CLI exposes it as ``info --verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.paths import enumerate_sequences, invert_sequences, label_sequences_for_pair


@dataclass
class ValidationReport:
    """Outcome of an index verification run."""

    index_type: str
    pairs_checked: int
    classes_checked: int
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no invariant violation was found."""
        return not self.problems

    def describe(self) -> str:
        """Human-readable summary."""
        status = "OK" if self.ok else f"{len(self.problems)} PROBLEM(S)"
        lines = [
            f"{self.index_type}: {status} "
            f"({self.pairs_checked} pairs, {self.classes_checked} classes)"
        ]
        lines.extend(f"  - {problem}" for problem in self.problems[:20])
        if len(self.problems) > 20:
            lines.append(f"  ... and {len(self.problems) - 20} more")
        return "\n".join(lines)


def verify_index(index: CPQxIndex | InterestAwareIndex) -> ValidationReport:
    """Check every structural invariant of a CPQx / iaCPQx instance."""
    if isinstance(index, InterestAwareIndex):
        expected = _expected_interest_membership(index)
        report = ValidationReport("iaCPQx", len(expected), index.num_classes)
    else:
        expected = invert_sequences(enumerate_sequences(index.graph, index.k))
        report = ValidationReport("CPQx", len(expected), index.num_classes)

    # coverage: stored pairs == expected pairs
    decode = index.graph.interner.decode_pair
    stored = {decode(code) for code in index._class_of}
    for pair in stored - set(expected):
        report.problems.append(f"stored pair {pair!r} has no qualifying path")
    for pair in set(expected) - stored:
        report.problems.append(f"missing pair {pair!r}")

    # uniformity + bidirectional consistency
    for class_id, members in index._ic2p.items():
        if not members:
            report.problems.append(f"class {class_id} is empty")
            continue
        declared = index._class_sequences.get(class_id)
        if declared is None:
            report.problems.append(f"class {class_id} has no sequence set")
            continue
        loop_flags = {pair[0] == pair[1] for pair in members}
        if len(loop_flags) > 1:
            report.problems.append(f"class {class_id} mixes loops and non-loops")
        elif (class_id in index._loop_classes) != loop_flags.pop():
            report.problems.append(f"class {class_id} loop registry mismatch")
        for code, pair in zip(members.iter_codes(), members, strict=True):
            if index._class_of.get(code) != class_id:
                report.problems.append(
                    f"pair {pair!r} listed in class {class_id} but mapped elsewhere"
                )
            actual = expected.get(pair)
            if actual is not None and frozenset(_visible(index, actual)) != frozenset(
                _visible(index, declared)
            ):
                report.problems.append(
                    f"pair {pair!r} sequences differ from class {class_id}'s"
                )
        for seq in declared:
            postings = index._il2c.get(seq)
            if _seq_visible(index, seq) and (
                postings is None or class_id not in postings
            ):
                report.problems.append(
                    f"class {class_id} missing from Il2c posting of {seq}"
                )

    # no dangling Il2c postings
    for seq, classes in index._il2c.items():
        for class_id in classes:
            if class_id not in index._ic2p:
                report.problems.append(
                    f"Il2c posting for {seq} references dead class {class_id}"
                )
    return report


def _visible(index, sequences):
    """Project a sequence set to what the index is accountable for."""
    if isinstance(index, InterestAwareIndex):
        return {seq for seq in sequences if seq in index.interests}
    return set(sequences)


def _seq_visible(index, seq) -> bool:
    if isinstance(index, InterestAwareIndex):
        return seq in index.interests
    return True


def _expected_interest_membership(index: InterestAwareIndex):
    """Ground-truth pair → matched-interest map for iaCPQx."""
    expected: dict = {}
    for seq in index.interests:
        for pair in index.graph.sequence_relation(seq):
            expected.setdefault(pair, set()).add(seq)
    return {pair: frozenset(seqs) for pair, seqs in expected.items()}


def quick_verify(index: CPQxIndex, sample: int = 50) -> ValidationReport:
    """Sampled verification for large indexes: spot-check ``sample`` pairs.

    Re-derives ``L≤k`` for a deterministic sample of stored pairs instead
    of the full enumeration — O(sample · d^k) instead of O(|P≤k| · γ).
    """
    report = ValidationReport(
        type(index).__name__, 0, index.num_classes
    )
    decode = index.graph.interner.decode_pair
    by_pair = {decode(code): class_id for code, class_id in index._class_of.items()}
    pairs = sorted(by_pair, key=repr)
    step = max(1, len(pairs) // max(1, sample))
    for pair in pairs[::step]:
        class_id = by_pair[pair]
        declared = index._class_sequences[class_id]
        actual = label_sequences_for_pair(index.graph, pair[0], pair[1], index.k)
        expected_view = frozenset(_visible(index, actual))
        declared_view = frozenset(_visible(index, declared))
        if expected_view != declared_view:
            report.problems.append(
                f"pair {pair!r}: declared {sorted(declared_view)} "
                f"vs actual {sorted(expected_view)}"
            )
        report.pairs_checked += 1
    return report
