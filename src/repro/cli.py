"""Command-line interface: ``python -m repro <command>`` (or the
``repro`` console script).

Commands mirroring the session life cycle of
:class:`repro.db.GraphDatabase`, which every command routes through:

* ``datasets`` — list the registry with stand-in and paper statistics;
* ``build``    — build any registered engine over a dataset and (for the
  persistable CPQx/iaCPQx) save it to disk;
* ``query``    — evaluate a CPQ (text syntax) against a saved index or a
  freshly built dataset with a chosen ``--engine``;
* ``info``     — statistics of a saved index;
* ``serve``    — the resilient serving daemon over a saved index (see
  the "Serving daemon" section of ``docs/robustness.md``);
* ``experiment`` — regenerate one paper table/figure by name.

Examples::

    python -m repro datasets
    python -m repro build --dataset robots --k 2 --out robots.idx
    python -m repro query --index robots.idx "(l1 . l1) & l1^-"
    python -m repro query --dataset robots --engine auto --stats "l1 & l1"
    python -m repro serve robots.idx --port 8080
    python -m repro experiment table3
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments as experiments_module
from repro.core.stats import dataset_stats, format_bytes
from repro.db import GraphDatabase, available_engines
from repro.errors import ReproError
from repro.graph.datasets import REGISTRY

#: experiment-name → generator function mapping for the CLI.
EXPERIMENTS = {
    "table2": lambda: experiments_module.table2_datasets(),
    "fig6": lambda: experiments_module.fig6_query_time(datasets=("robots", "advogato")),
    "table3": lambda: experiments_module.table3_pruning_power(datasets=("robots", "advogato")),
    "fig7": lambda: experiments_module.fig7_empty_nonempty(datasets=("yago",)),
    "fig8": lambda: experiments_module.fig8_interest_size(fractions=(1.0, 0.5, 0.0)),
    "fig9": lambda: experiments_module.fig9_yago_benchmark(),
    "fig10": lambda: experiments_module.fig10_lubm_watdiv(sizes=(300, 600, 1200)),
    "fig11": lambda: experiments_module.fig11_scalability(sizes=(300, 600, 1200)),
    "fig12": lambda: experiments_module.fig12_label_count(label_counts=(16, 64, 256)),
    "table4": lambda: experiments_module.table4_index_size(datasets=("robots", "advogato")),
    "table5": lambda: experiments_module.table5_cpqx_updates(datasets=("robots",)),
    "table6": lambda: experiments_module.table6_iacpqx_updates(datasets=("robots",)),
    "table7": lambda: experiments_module.table7_size_growth(),
    "fig13": lambda: experiments_module.fig13_maintenance_impact(),
    "fig14": lambda: experiments_module.fig14_k_query_time(),
    "fig15": lambda: experiments_module.fig15_k_index_cost(),
}


def _workers_arg(raw: str) -> int | str:
    """argparse type for worker counts: a positive int or 'auto'."""
    if raw == "auto":
        return "auto"
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive int or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive int or 'auto', got {raw!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CPQ-aware path indexing (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset registry")

    engine_choices = ("auto", *available_engines())

    build = sub.add_parser("build", help="build an index over a dataset")
    build.add_argument("--dataset", required=True, choices=sorted(REGISTRY))
    build.add_argument("--scale", type=float, default=0.25)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--k", type=int, default=2)
    build.add_argument(
        "--engine", choices=engine_choices, default=None,
        help="engine to build ('auto' routes through the advisor/cost model)",
    )
    build.add_argument(
        "--type", choices=("cpqx", "iacpqx"), default=None,
        help="deprecated alias of --engine (kept for old scripts)",
    )
    build.add_argument(
        "--interests", default="auto",
        help="'auto' derives interests from a template workload; "
             "or a comma list of label sequences like 'l1.l2,l2.l3^-'",
    )
    build.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="shard construction over N worker processes "
             "('auto' = one per CPU; engines that cannot shard ignore it)",
    )
    build.add_argument("--out", required=True, help="output index file")
    build.add_argument(
        "--store", action="store_true",
        help="save in the zero-copy columnar store format (mmap-openable) "
             "instead of checksummed JSON",
    )
    build.add_argument(
        "--kernels", choices=("auto", "numpy", "pure"), default="auto",
        help="set-algebra kernel backend ('auto' = numpy when importable; "
             "results are bit-identical either way)",
    )

    query = sub.add_parser("query", help="evaluate a CPQ")
    query.add_argument("cpq", help="query text, e.g. '(f . f) & f^-'")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--index", help="a saved index file")
    source.add_argument("--dataset", choices=sorted(REGISTRY))
    query.add_argument("--scale", type=float, default=0.25)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument("--k", type=int, default=2)
    query.add_argument(
        "--engine", choices=engine_choices, default="cpqx",
        help="engine for --dataset evaluation (ignored with --index)",
    )
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--show", type=int, default=20, help="answers to print")
    query.add_argument(
        "--stats", action="store_true",
        help="print the executor's operator counters and the plan",
    )

    info = sub.add_parser("info", help="statistics of a saved index")
    info.add_argument("index")
    info.add_argument(
        "--verify", action="store_true",
        help="re-derive ground truth and check every index invariant",
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    micro = sub.add_parser(
        "bench-micro",
        help="time build + query on a generated graph vs the pre-PR core "
             "and emit machine-readable JSON",
    )
    micro.add_argument("--vertices", type=int, default=250)
    micro.add_argument("--edges", type=int, default=2000)
    micro.add_argument("--labels", type=int, default=3)
    micro.add_argument("--k", type=int, default=2)
    micro.add_argument("--seed", type=int, default=7)
    micro.add_argument("--repeats", type=int, default=5)
    micro.add_argument("--out", default=None, help="write JSON here instead of stdout")

    concurrent = sub.add_parser(
        "bench-concurrent",
        aliases=["serve-bench"],
        help="time sharded parallel build + threaded and process-based "
             "serving vs the serial paths and emit machine-readable JSON",
    )
    concurrent.add_argument("--vertices", type=int, default=250)
    concurrent.add_argument("--edges", type=int, default=2000)
    concurrent.add_argument("--labels", type=int, default=3)
    concurrent.add_argument(
        "--k", type=int, default=3,
        help="path-length bound (default 3: the regime where both "
             "sharded CPQx stages — partition and derivation — carry "
             "real work)",
    )
    concurrent.add_argument("--seed", type=int, default=7)
    concurrent.add_argument("--repeats", type=int, default=3)
    concurrent.add_argument(
        "--build-workers", type=_workers_arg, default="auto", metavar="N|auto",
        help="worker processes for the sharded builds (default: one per CPU)",
    )
    concurrent.add_argument(
        "--serve-threads", type=int, default=8,
        help="reader threads for the concurrent serving measurement",
    )
    concurrent.add_argument(
        "--serve-procs", type=int, default=None,
        help="worker processes for the GIL-free serving measurement "
             "(mode='process'; default: same as --serve-threads)",
    )
    concurrent.add_argument(
        "--chaos", action="store_true",
        help="also serve the workload under seeded fault injection "
             "(worker kills, injected errors, dropped replies) and report "
             "recovery latency, restart and retry counts, plus a chaotic "
             "sharded build checked fingerprint-identical",
    )
    concurrent.add_argument(
        "--chaos-seed", type=int, default=None,
        help="override the curated per-scenario fault seeds (one seed "
             "applied to every --chaos scenario; recovery within the "
             "restart budget is then not guaranteed)",
    )
    concurrent.add_argument(
        "--daemon", action="store_true",
        help="bench the serving daemon instead: boot a ServingDaemon and "
             "drive it over HTTP through normal load, overload shedding, "
             "chaos, hot swap, and graceful drain (serve-bench --daemon)",
    )
    concurrent.add_argument(
        "--out", default=None, help="write JSON here instead of stdout"
    )

    serve = sub.add_parser(
        "serve",
        help="run the resilient serving daemon over a saved index "
             "(bounded admission, deadlines, circuit breaker, graceful "
             "SIGTERM drain, hot swap via POST /update and /reload)",
    )
    serve.add_argument("index", help="a saved index file (JSON or .rsx store)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--port-file", default=None,
        help="write the bound port here once listening (for supervisors)",
    )
    serve.add_argument(
        "--capacity", type=int, default=64,
        help="admission queue bound; requests beyond it are shed with "
             "structured 'overloaded' rejects",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="serve_batch worker count per coalesced batch",
    )
    serve.add_argument(
        "--mode", choices=("auto", "thread", "process"), default="auto",
        help="serving mode under a closed breaker (the breaker may "
             "demote process mode to threads)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.01,
        help="micro-batch coalescing window, seconds",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="cap on one coalesced batch",
    )
    serve.add_argument(
        "--deadline", type=float, default=10.0,
        help="default per-request deadline, seconds (requests may send "
             "their own 'timeout')",
    )
    serve.add_argument(
        "--drain-deadline", type=float, default=10.0,
        help="SIGTERM to forced-exit budget, seconds",
    )
    serve.add_argument(
        "--retries", type=int, default=None,
        help="per-query retry budget inside serve_batch "
             "(default: the serving pool's)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive batch failures that open the circuit breaker",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0,
        help="seconds an open breaker waits before its half-open probe",
    )
    serve.add_argument(
        "--kernels", choices=("auto", "numpy", "pure"), default="auto",
        help="set-algebra kernel backend ('auto' = numpy when importable; "
             "results are bit-identical either way)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the project-specific static analyzer "
             "(concurrency/determinism/snapshot invariants)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline JSON whose findings are tolerated (see docs/static-analysis.md)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    lint.add_argument(
        "--fail-on-findings", action="store_true",
        help="exit nonzero when findings remain (the default, made explicit for CI)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format",
        help="findings output format",
    )
    return parser


def _apply_kernels(choice: str) -> int:
    """Select the kernel backend for ``--kernels``; 0 on success.

    'auto' keeps the import-time default (numpy when importable).  An
    explicit 'numpy' without numpy installed is a hard error rather
    than a silent fallback — the caller asked for the vectorized build.
    """
    if choice == "auto":
        return 0
    from repro.core import kernels

    if choice not in kernels.available_backends():
        print(
            f"error: --kernels {choice} requested but the {choice} backend "
            f"is unavailable (is numpy installed?); available: "
            f"{', '.join(kernels.available_backends())}",
            file=sys.stderr,
        )
        return 2
    kernels.set_backend(choice)
    return 0


def _parse_interest_list(raw: str, registry) -> set[tuple[int, ...]]:
    interests: set[tuple[int, ...]] = set()
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        interests.add(tuple(
            registry.id_of(name.strip()) for name in chunk.split(".")
        ))
    return interests


def cmd_datasets(_args) -> int:
    print(f"{'name':<14}{'|V|':>7}{'|E|':>8}{'|L|':>6}  "
          f"{'paper |V|':>10}{'paper |E|':>12}  full-index")
    for name, spec in REGISTRY.items():
        graph = spec.build(scale=0.1, seed=0)
        stats = dataset_stats(name, graph)
        print(f"{name:<14}{stats.vertices:>7}{stats.edges_extended:>8}"
              f"{stats.labels_extended:>6}  {spec.paper_stats.vertices:>10}"
              f"{spec.paper_stats.edges:>12}  "
              f"{'yes' if spec.full_index_feasible else 'no (OOM in paper)'}")
    return 0


def cmd_build(args) -> int:
    if args.engine is not None and args.type is not None:
        print("error: --type is a deprecated alias of --engine; pass one",
              file=sys.stderr)
        return 2
    engine = args.engine or args.type or "cpqx"
    if (code := _apply_kernels(args.kernels)) != 0:
        return code
    db = GraphDatabase.from_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"loaded {args.dataset}: {db.graph}")
    interests = (
        "auto" if args.interests == "auto"
        else _parse_interest_list(args.interests, db.graph.registry)
    )
    db.build_index(
        engine=engine, k=args.k, interests=interests, seed=args.seed,
        workers=args.workers,
    )
    if db.selection is not None:
        print(db.selection.describe())
    print(db.stats.describe())
    db.save(args.out, format="store" if args.store else "json")
    print(f"saved to {args.out}")
    return 0


def cmd_query(args) -> int:
    if args.index:
        db = GraphDatabase.open(args.index)
    else:
        db = GraphDatabase.from_dataset(
            args.dataset, scale=args.scale, seed=args.seed
        )
        db.build_index(engine=args.engine, k=args.k, seed=args.seed)
        if db.selection is not None:
            print(db.selection.describe())
    result = db.query(args.cpq, limit=args.limit)
    start = time.perf_counter()
    answers = result.to_list()
    elapsed = time.perf_counter() - start
    print(f"[{db.engine_name}] {len(answers)} answers in {elapsed * 1000:.3f} ms")
    for pair in answers[: args.show]:
        print(f"  {pair[0]!r} -> {pair[1]!r}")
    if len(answers) > args.show:
        print(f"  ... and {len(answers) - args.show} more")
    if args.stats:
        stats = result.stats
        print(f"stats: lookups={stats.lookups} joins={stats.joins} "
              f"class-conj={stats.class_conjunctions} "
              f"pair-conj={stats.pair_conjunctions} "
              f"classes-touched={stats.classes_touched} "
              f"pairs-touched={stats.pairs_touched}")
        print(result.explain())
    return 0


def cmd_info(args) -> int:
    db = GraphDatabase.open(args.index)
    index = db.engine
    print(db.stats.describe())
    print(f"graph: {db.graph}")
    print(f"size: {format_bytes(index.size_bytes())}")
    if hasattr(index, "interests"):
        multi = sorted(s for s in index.interests if len(s) > 1)
        print(f"interests: {len(index.interests)} "
              f"({len(multi)} multi-label)")
    if args.verify:
        from repro.core.validate import verify_index

        report = verify_index(index)
        print(report.describe())
        return 0 if report.ok else 1
    return 0


#: Figure experiments that also get a log-scale ASCII series rendering:
#: name → (x column, y column, group column).
SERIES_VIEWS = {
    "fig8": ("interest_pct", "mean_time_s", "template"),
    "fig10": ("edges", "mean_time_s", "suite"),
    "fig11": ("vertices", "mean_time_s", "template"),
    "fig12": ("labels", "Path", "labels"),
    "fig13": ("updated_pct", "mean_time_s", "template"),
    "fig14": ("k", "mean_time_s", "template"),
    "fig15": ("k", "size_bytes", "dataset"),
}


def cmd_bench_micro(args) -> int:
    from repro.bench.micro import main_bench_micro

    return main_bench_micro(args)


def cmd_bench_concurrent(args) -> int:
    if args.daemon:
        from repro.bench.daemon_bench import main_bench_daemon

        return main_bench_daemon(args)
    from repro.bench.concurrent import main_bench_concurrent

    return main_bench_concurrent(args)


def cmd_serve(args) -> int:
    """Run the serving daemon until SIGTERM/SIGINT (or POST /shutdown)."""
    import asyncio

    from repro.serve.daemon import DaemonConfig, ServingDaemon
    from repro.serve.procserve import DEFAULT_RETRIES

    if (code := _apply_kernels(args.kernels)) != 0:
        return code
    db = GraphDatabase.open(args.index)
    config = DaemonConfig(
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        workers=args.workers,
        mode=args.mode,
        default_deadline=args.deadline,
        drain_deadline=args.drain_deadline,
        retries=DEFAULT_RETRIES if args.retries is None else args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    daemon = ServingDaemon(db, config)

    async def _serve() -> None:
        started = asyncio.create_task(daemon.run())
        while daemon.port is None and not started.done():  # noqa: ASYNC110
            await asyncio.sleep(0.01)
        if daemon.port is not None:
            print(f"serving {args.index} on {args.host}:{daemon.port}", flush=True)
            if args.port_file:
                with open(args.port_file, "w", encoding="utf-8") as handle:
                    handle.write(f"{daemon.port}\n")
        await started

    asyncio.run(_serve())
    if daemon.drained_clean is False:
        print("warning: drain deadline exceeded; queued requests were "
              "failed fast", file=sys.stderr)
        return 1
    return 0


def cmd_lint(args) -> int:
    from repro import analysis

    if args.list_rules:
        for rule_cls in analysis.ALL_RULES:
            print(f"{rule_cls.rule_id}  {rule_cls.title}")
        return 0
    findings = analysis.run_lint(args.paths)
    if args.write_baseline:
        if args.baseline is None:
            print("error: --write-baseline requires --baseline", file=sys.stderr)
            return 2
        analysis.write_baseline(args.baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0
    if args.baseline is not None:
        findings = analysis.subtract_baseline(
            findings, analysis.load_baseline(args.baseline)
        )
    if args.output_format == "json":
        print(analysis.render_json(findings))
    elif findings:
        print(analysis.render_text(findings))
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def cmd_experiment(args) -> int:
    result = EXPERIMENTS[args.name]()
    print(result.render())
    view = SERIES_VIEWS.get(args.name)
    if view is not None:
        from repro.bench.reporting import render_series

        print()
        print(render_series(result, x=view[0], y=view[1], group_by=view[2]))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "build": cmd_build,
        "query": cmd_query,
        "info": cmd_info,
        "experiment": cmd_experiment,
        "bench-micro": cmd_bench_micro,
        "bench-concurrent": cmd_bench_concurrent,
        "serve-bench": cmd_bench_concurrent,
        "serve": cmd_serve,
        "lint": cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
