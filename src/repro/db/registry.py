"""String-keyed engine registry — the plugin seam of the database facade.

Every evaluation engine in this package (the paper's seven compared
methods plus the relational strawman) registers itself here under a
stable lowercase key, so the :class:`repro.db.GraphDatabase` facade, the
CLI, and the benchmark harness all build engines the same way:

    spec = engine_spec("cpqx")
    engine = spec.build(graph, k=2)

Third-party backends join the comparison by calling
:func:`register_engine` (or using it as a decorator on a builder
function); nothing else in the system needs to change — the CLI
``--engine`` choices, ``GraphDatabase.build_index``, and
``bench.runner.build_engine`` all read this registry.

Keys are case-insensitive (``"CPQx"``, ``"cpqx"`` and ``"iaCPQx"``,
``"iacpqx"`` resolve identically), matching the paper's display names.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import UnknownEngineError
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelSeq


@dataclass(frozen=True)
class EngineSpec:
    """Everything the facade needs to build and describe one engine."""

    key: str
    display_name: str
    builder: Callable[..., object]
    uses_k: bool = True
    uses_interests: bool = False
    persistable: bool = False
    incremental: bool = False
    #: Whether the builder accepts ``workers`` for sharded parallel
    #: construction (:mod:`repro.core.parallel`; on CPQx this includes
    #: the Algorithm 1 partition, :mod:`repro.core.partition`).
    parallelizable: bool = False
    #: Whether built engines satisfy the snapshot invariant — picklable
    #: after build (minus memo caches; ``EngineBase.__getstate__``) with
    #: served answers identical to the original — and may therefore be
    #: shipped to the process-based serving pool
    #: (:meth:`repro.db.GraphDatabase.serve_batch` with
    #: ``mode="process"``).  Every built-in engine qualifies; a
    #: third-party engine holding unpicklable state opts out here and
    #: ``mode="auto"`` falls back to thread serving.
    process_servable: bool = True
    description: str = ""
    aliases: tuple[str, ...] = field(default=())

    def build(
        self,
        graph: LabeledDigraph,
        k: int = 2,
        interests: Iterable[LabelSeq] = frozenset(),
        workers: int | str = 1,
    ):
        """Instantiate the engine over ``graph`` with the relevant knobs.

        ``workers`` is forwarded only to parallelizable builders (and
        only when it asks for more than one worker), so serial-only
        engines keep their original builder signatures.
        """
        kwargs: dict[str, object] = {}
        if self.uses_k:
            kwargs["k"] = k
        if self.uses_interests:
            kwargs["interests"] = frozenset(interests)
        if self.parallelizable and workers not in (None, 1):
            kwargs["workers"] = workers
        return self.builder(graph, **kwargs)


_REGISTRY: dict[str, EngineSpec] = {}
_ALIASES: dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Add an engine to the registry; its aliases become lookup keys too.

    Registration under a taken key raises ``ValueError`` unless
    ``replace=True`` — deliberate, so a typo cannot silently shadow a
    built-in method in a benchmark comparison.
    """
    key = _normalize(spec.key)
    taken = [
        name for name in (key, *map(_normalize, spec.aliases))
        if not replace and (name in _REGISTRY or name in _ALIASES)
    ]
    if taken:
        raise ValueError(
            f"engine key(s) already registered: {', '.join(sorted(set(taken)))}"
            " (pass replace=True to override)"
        )
    _REGISTRY[key] = spec
    for alias in spec.aliases:
        _ALIASES[_normalize(alias)] = key
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine (and its aliases); unknown names raise."""
    spec = engine_spec(name)
    key = _normalize(spec.key)
    del _REGISTRY[key]
    # list() copy is load-bearing: the loop deletes from _ALIASES.
    for alias, target in list(_ALIASES.items()):  # noqa: PERF101
        if target == key:
            del _ALIASES[alias]


def engine_spec(name: str) -> EngineSpec:
    """Resolve an engine name (or alias, case-insensitively) to its spec."""
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownEngineError(name, available_engines()) from None


def available_engines() -> tuple[str, ...]:
    """The registered engine keys, sorted."""
    return tuple(sorted(_REGISTRY))


def _register_builtins() -> None:
    """Register the paper's compared methods (idempotent)."""
    from repro.baselines.bfs import BFSEngine
    from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
    from repro.baselines.relational import RelationalEngine
    from repro.baselines.tentris import TentrisEngine
    from repro.baselines.turbohom import TurboHomEngine
    from repro.core.cpqx import CPQxIndex
    from repro.core.interest import InterestAwareIndex

    builtins = (
        EngineSpec(
            key="cpqx", display_name="CPQx", builder=CPQxIndex.build,
            persistable=True, incremental=True, parallelizable=True,
            description="CPQ-aware path index (Sec. IV): class-level "
                        "lookups over the CPQ_k partition",
        ),
        EngineSpec(
            key="iacpqx", display_name="iaCPQx",
            builder=InterestAwareIndex.build,
            uses_interests=True, persistable=True, incremental=True,
            parallelizable=True,
            description="interest-aware CPQx (Sec. V): postings only for "
                        "interest sequences",
        ),
        EngineSpec(
            key="path", display_name="Path", builder=PathIndex.build,
            parallelizable=True,
            description="language-unaware path index [14]: sequence -> "
                        "full pair lists",
        ),
        EngineSpec(
            key="iapath", display_name="iaPath",
            builder=InterestAwarePathIndex.build, uses_interests=True,
            parallelizable=True,
            description="Path index restricted to interest sequences",
        ),
        EngineSpec(
            key="turbohom", display_name="TurboHom",
            builder=lambda graph: TurboHomEngine(graph), uses_k=False,
            description="TurboHom++-style backtracking homomorphic matcher",
        ),
        EngineSpec(
            key="tentris", display_name="Tentris",
            builder=lambda graph: TentrisEngine(graph), uses_k=False,
            description="Tentris-style hypertrie store with WCOJ evaluation",
        ),
        EngineSpec(
            key="bfs", display_name="BFS",
            builder=lambda graph: BFSEngine(graph), uses_k=False,
            description="index-free breadth-first-search evaluation",
        ),
        EngineSpec(
            key="relational", display_name="Relational",
            builder=RelationalEngine.build,
            description="edge-table joins (Path with k=1); the baseline "
                        "the paper dismisses analytically",
        ),
    )
    for spec in builtins:
        if _normalize(spec.key) not in _REGISTRY:
            register_engine(spec)


_register_builtins()
