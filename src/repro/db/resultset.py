"""Lazy query results for the :class:`repro.db.GraphDatabase` facade.

A :class:`ResultSet` is a *description* of an evaluation — engine plus
parsed query plus optional limit/vertex-data filters — that touches the
engine only when answers are demanded (iteration, ``len``, membership,
``pairs()``...).  Until then it costs nothing, so callers can build
result sets for a whole workload, pass them around, and pay only for the
ones actually consumed.

Two consumers get extra laziness:

* :meth:`count` — for conjunction-only queries on class-based engines
  (CPQx/iaCPQx) the count is read off class sizes without materializing
  a single s-t pair (the engine's COUNT pushdown);
* :attr:`stats` — an :class:`ExecutionStats` exposing the paper's
  operator counters (lookups, joins, class/pair conjunctions, pairs
  touched).  It always reflects the *most recent* evaluation — a
  pushdown count or the materializing run — never the sum of both, so
  benchmark readings stay per-evaluation.  The object itself is
  identity-stable: a reference taken before consumption sees the
  counters once they land.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.core.executor import ExecutionStats
from repro.graph.digraph import Pair
from repro.query.ast import CPQ

VertexDataFilter = Callable[[dict], bool]


class ResultSet:
    """Iterable, countable, explainable answers of one CPQ — evaluated lazily."""

    def __init__(
        self,
        engine,
        query: CPQ,
        limit: int | None = None,
        source_filter: VertexDataFilter | None = None,
        target_filter: VertexDataFilter | None = None,
    ) -> None:
        self._engine = engine
        self._query = query
        self._limit = limit
        self._source_filter = source_filter
        self._target_filter = target_filter
        self._pairs: frozenset[Pair] | None = None
        self._error: Exception | None = None
        #: Operator counters of the evaluation (filled on materialization).
        self.stats = ExecutionStats()

    @classmethod
    def from_answers(
        cls,
        engine,
        query: CPQ,
        limit: int | None,
        pairs: Iterable[Pair],
        stats: ExecutionStats,
    ) -> ResultSet:
        """A pre-materialized result set.

        Used by the process-based serving path: the answers (and the
        run's operator counters) were computed in a worker process, so
        the result set arrives already evaluated — consuming it never
        touches the engine.
        """
        result = cls(engine, query, limit=limit)
        result._pairs = frozenset(pairs)
        result._record(stats)
        return result

    @classmethod
    def from_error(
        cls,
        engine,
        query: CPQ,
        limit: int | None,
        error: Exception,
    ) -> ResultSet:
        """A permanently failed result slot (``serve_batch(on_error="partial")``).

        The slot carries the structured serving error instead of
        answers: inspecting :attr:`failed`/:attr:`error` is free, while
        any attempt to *consume* the answers re-raises ``error`` — a
        failed query can never be mistaken for an empty one.
        """
        result = cls(engine, query, limit=limit)
        result._error = error
        return result

    # ------------------------------------------------------------------
    # lazy core
    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """Whether this slot is a permanent per-query serving failure."""
        return self._error is not None

    @property
    def error(self) -> Exception | None:
        """The serving error of a failed slot (``None`` on success)."""
        return self._error

    @property
    def query(self) -> CPQ:
        """The (resolved) query this result set answers."""
        return self._query

    @property
    def engine(self):
        """The engine that will (or did) evaluate the query."""
        return self._engine

    @property
    def materialized(self) -> bool:
        """Whether the answer pairs have been computed yet."""
        return self._pairs is not None

    def _record(self, run: ExecutionStats) -> None:
        """Overwrite the public counters with one evaluation's numbers."""
        self.stats.lookups = run.lookups
        self.stats.classes_touched = run.classes_touched
        self.stats.pairs_touched = run.pairs_touched
        self.stats.class_conjunctions = run.class_conjunctions
        self.stats.pair_conjunctions = run.pair_conjunctions
        self.stats.joins = run.joins

    def _materialize(self) -> frozenset[Pair]:
        if self._error is not None:
            raise self._error
        if self._pairs is None:
            run = ExecutionStats()
            filtered = (
                self._source_filter is not None or self._target_filter is not None
            )
            # With filters, the limit applies to *surviving* answers, so
            # evaluate unlimited, filter, then truncate deterministically;
            # limiting first could drop every filtered match.
            answers = self._engine.evaluate(
                self._query, stats=run, limit=None if filtered else self._limit
            )
            if filtered:
                graph = self._engine.graph
                kept = [
                    (v, u) for v, u in sorted(answers, key=repr)
                    if (self._source_filter is None
                        or self._source_filter(graph.vertex_data(v)))
                    and (self._target_filter is None
                         or self._target_filter(graph.vertex_data(u)))
                ]
                if self._limit is not None:
                    kept = kept[: self._limit]
                answers = kept
            self._record(run)
            self._pairs = frozenset(answers)
        return self._pairs

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def pairs(self) -> frozenset[Pair]:
        """The full answer set (materializes)."""
        return self._materialize()

    def to_list(self) -> list[Pair]:
        """Deterministically ordered answer list (materializes)."""
        return sorted(self._materialize(), key=repr)

    def sources(self) -> frozenset:
        """Distinct source vertices of the answers (materializes)."""
        return frozenset(v for v, _ in self._materialize())

    def targets(self) -> frozenset:
        """Distinct target vertices of the answers (materializes)."""
        return frozenset(u for _, u in self._materialize())

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.to_list())

    def __len__(self) -> int:
        return len(self._materialize())

    def __contains__(self, pair: object) -> bool:
        return pair in self._materialize()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self.pairs() == other.pairs()
        if isinstance(other, (set, frozenset)):
            return self.pairs() == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - identity semantics
        return id(self)

    def count(self) -> int:
        """Answer cardinality, avoiding pair materialization where possible.

        Delegates to the engine's COUNT pushdown (class-size summation on
        CPQx/iaCPQx) when no limit/filter forces materialized semantics;
        the result set stays unmaterialized in that case.
        """
        if self._error is not None:
            raise self._error
        if self._pairs is not None:
            return len(self._pairs)
        pushdown = getattr(self._engine, "count", None)
        if (
            pushdown is not None
            and self._limit is None
            and self._source_filter is None
            and self._target_filter is None
        ):
            run = ExecutionStats()
            counted = pushdown(self._query, stats=run)
            self._record(run)
            return counted
        return len(self._materialize())

    def is_empty(self) -> bool:
        """Whether the query has no answers (uses the lazy count path)."""
        return self.count() == 0

    def explain(self) -> str:
        """The engine's plan/profile report for this query."""
        explain = getattr(self._engine, "explain", None)
        if explain is not None:
            return explain(self._query)
        name = getattr(self._engine, "name", type(self._engine).__name__)
        return (
            f"engine: {name}\n"
            f"plan:   pattern-graph search (no logical plan)\n"
            f"answers: {len(self)}"
        )

    def __repr__(self) -> str:
        if self._error is not None:
            return (
                f"ResultSet(engine={getattr(self._engine, 'name', '?')}, "
                f"failed: {type(self._error).__name__})"
            )
        if self._pairs is None:
            return f"ResultSet(engine={getattr(self._engine, 'name', '?')}, pending)"
        return (
            f"ResultSet(engine={getattr(self._engine, 'name', '?')}, "
            f"answers={len(self._pairs)})"
        )
