"""The :class:`GraphDatabase` session facade — one front door for every engine.

The seed exposed six engine classes with subtly different construction
and evaluation entry points; every example, benchmark, and CLI command
re-implemented the build → plan → evaluate → stats pipeline by hand.
``GraphDatabase`` owns that pipeline once:

    db = GraphDatabase.from_triples([("a", "b", "f"), ("b", "a", "f")])
    db.build_index(engine="auto")          # advisor + cost model routing
    for pair in db.query("(f . f) & id"):  # lazy ResultSet
        ...
    db.update(add_edges=[("a", "c", "f")])  # lazy maintenance + refresh
    db.save("graph.idx")                    # persistence round-trip
    db2 = GraphDatabase.open("graph.idx")

The session life cycle:

* **open** — :meth:`from_triples`, :meth:`from_graph`, :meth:`from_dataset`,
  or :meth:`open` (a saved index file, via :mod:`repro.core.persistence`);
* **build** — :meth:`build_index` resolves the engine through the
  registry (:mod:`repro.db.registry`); ``engine="auto"`` routes through
  the advisor/cost-model policy (:mod:`repro.db.auto`), and
  ``interests="auto"`` derives interests from the workload;
* **query** — :meth:`query` returns a lazy :class:`ResultSet`;
  :meth:`execute_batch` evaluates a workload and aggregates its stats;
* **update** — :meth:`update` applies edge/vertex changes through the
  lazy maintenance of Sec. IV-E on incremental engines (CPQx/iaCPQx) and
  transparently rebuilds the others;
* **save** — :meth:`save` persists persistable engines.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import TYPE_CHECKING, cast

from repro.core.advisor import advise_k, recommend_interests
from repro.core.concurrency import RWLock
from repro.core.executor import ExecutionStats
from repro.core.parallel import resolve_workers
from repro.core.stats import IndexStats, stats_of
from repro.db.auto import AutoSelection, default_workload, select_engine
from repro.db.registry import EngineSpec, available_engines, engine_spec
from repro.db.resultset import ResultSet, VertexDataFilter
from repro.errors import QueryTimeoutError, ReproError, ServingError, SessionError
from repro.graph.digraph import LabeledDigraph, Vertex
from repro.graph.labels import LabelSeq
from repro.query.ast import CPQ, is_resolved, resolve
from repro.query.parser import parse
from repro.serve import (
    DEFAULT_RETRIES,
    PROCESS_MODE_MIN_QUERIES,
    ProcessServingPool,
    ServeFailure,
    ServeToken,
    current_injector,
    session_token,
)
from repro.serve.faults import FaultInjector
from repro.serve.procserve import RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP

if TYPE_CHECKING:
    from repro.store.writer import StoreState

Triple = tuple[Vertex, Vertex, object]

#: Serving modes accepted by :meth:`GraphDatabase.serve_batch`.
SERVE_MODES = ("thread", "process", "auto")

#: Failure policies accepted by :meth:`GraphDatabase.serve_batch`.
ON_ERROR_POLICIES = ("raise", "partial")

#: How long ``mode="auto"`` keeps routing to threads after a process
#: pool exhausted its restart budget.  After the cooldown the session
#: re-tries process serving with a fresh pool and budget; a successful
#: batch clears the marker entirely (the probe path the serving
#: daemon's circuit breaker drives explicitly).
PROCESS_DEGRADED_COOLDOWN = 30.0


class BatchResult(Sequence):
    """Results of :meth:`GraphDatabase.execute_batch`: one materialized
    :class:`ResultSet` per query, plus merged operator counters.

    Under ``serve_batch(..., on_error="partial")`` some slots may be
    *failed* result sets (:attr:`ResultSet.failed`); they are excluded
    from the merged counters and :attr:`total_answers`, and listed by
    :attr:`failures`."""

    def __init__(self, results: list[ResultSet], elapsed_seconds: float) -> None:
        self.results = results
        self.elapsed_seconds = elapsed_seconds
        self.stats = ExecutionStats()
        for result in results:
            if not result.failed:
                self.stats.merge(result.stats)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, item):
        return self.results[item]

    @property
    def failures(self) -> list[ResultSet]:
        """The failed slots of a partial batch (empty when all succeeded)."""
        return [result for result in self.results if result.failed]

    @property
    def total_answers(self) -> int:
        return sum(len(result) for result in self.results if not result.failed)

    def describe(self) -> str:
        failed = len(self.failures)
        suffix = f", {failed} failed" if failed else ""
        return (
            f"{len(self.results)} queries, {self.total_answers} answers in "
            f"{1000 * self.elapsed_seconds:.3f} ms "
            f"(lookups={self.stats.lookups} joins={self.stats.joins}{suffix})"
        )


class GraphDatabase:
    """A session over one labeled digraph and one (current) engine."""

    def __init__(self, graph: LabeledDigraph, name: str = "graph") -> None:
        self.graph = graph
        self.name = name
        self._engine = None
        self._spec: EngineSpec | None = None
        self._build_args: dict = {}
        self._build_seconds = 0.0
        #: Readers/writer lock serializing :meth:`update` against the
        #: concurrent serving path (:meth:`serve_batch`): updates take
        #: the exclusive side, each served query the shared side, so a
        #: reader always observes the engine at an update boundary.
        self._rwlock = RWLock()
        #: Counts engine adoptions (builds, rebuilds, opens).  Part of
        #: the serve token: a rebuild on an unchanged graph swaps the
        #: engine object without moving the graph version or the new
        #: engine's epoch, and only this counter tells the process
        #: serving pool its shipped snapshots are stale.
        self._engine_gen = 0
        #: Lazily created by the first ``serve_batch(mode="process")``;
        #: guarded by ``_pool_lock`` (always acquired *after* the
        #: RWLock, never holding it while evaluating).
        self._proc_pool: ProcessServingPool | None = None
        self._pool_lock = threading.Lock()
        #: Degradation marker with a cooldown: set to a monotonic
        #: deadline when a process-serving pool exhausted its worker
        #: restart budget; ``mode="auto"`` routes batches to threads
        #: until the deadline passes (the degradation ladder — see
        #: ``docs/robustness.md``), then re-tries process serving with a
        #: fresh pool.  A successful process batch resets it to zero, so
        #: a *transient* crash storm does not demote the session
        #: forever.  An explicit ``mode="process"`` always builds a
        #: fresh pool with a fresh budget (the probe path).
        self._process_degraded_until = 0.0
        #: The cooldown window in seconds (tests and the daemon breaker
        #: tune it per instance).
        self.degraded_cooldown = PROCESS_DEGRADED_COOLDOWN
        #: Zero-copy serving state (PR 8): the session lazily writes the
        #: engine as store generations (full file + deltas) under a
        #: per-session temp directory, and process workers ``mmap``-open
        #: them by path instead of receiving a pickle.  ``_store_state``
        #: is the last written/opened generation, ``_store_token`` the
        #: serve token it covers; ``_store_lock`` serializes generation
        #: writes between concurrent batches (the RWLock's shared side
        #: is held, so it cannot order them).
        self._store_dir: str | None = None
        self._store_state: StoreState | None = None
        self._store_token: ServeToken | None = None
        self._store_lock = threading.Lock()
        #: Bumped when a worker failed to open a shipped generation
        #: (corrupt or deleted file): the next spool then writes a fresh
        #: *full* generation into a fresh subdirectory, so no worker can
        #: alias a previously-mapped path to the new content.
        self._store_respools = 0
        #: Escape hatch (the storage bench flips it): ``False`` restores
        #: pickled-snapshot shipping for process serving.
        self._store_serving = True
        #: Populated when ``engine="auto"`` made the choice.
        self.selection: AutoSelection | None = None

    # ------------------------------------------------------------------
    # opening a session
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: LabeledDigraph, name: str = "graph") -> GraphDatabase:
        """Wrap an existing graph in a session."""
        return cls(graph, name=name)

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Triple],
        labels: Iterable[str] | None = None,
        name: str = "graph",
    ) -> GraphDatabase:
        """Start a session from ``(source, target, label)`` triples.

        ``labels`` optionally pre-registers label names so their ids are
        stable regardless of first-use order in ``triples``.
        """
        from repro.graph.labels import LabelRegistry

        registry = LabelRegistry(labels) if labels is not None else None
        return cls(LabeledDigraph.from_triples(triples, registry), name=name)

    @classmethod
    def from_dataset(cls, name: str, scale: float = 0.25, seed: int = 7) -> GraphDatabase:
        """Start a session over a registry dataset stand-in."""
        from repro.graph.datasets import load_dataset

        return cls(load_dataset(name, scale=scale, seed=seed), name=name)

    @classmethod
    def open(cls, path, name: str | None = None) -> GraphDatabase:
        """Resume a session from a saved index file (graph included)."""
        from repro.core.interest import InterestAwareIndex
        from repro.core.persistence import load_index

        index = load_index(path)
        db = cls(index.graph, name=name or str(path))
        key = "iacpqx" if isinstance(index, InterestAwareIndex) else "cpqx"
        db._adopt(index, engine_spec(key), {"k": index.k})
        # A store-opened engine arrives with its generation state: the
        # session serves straight off the opened file (and chains deltas
        # from it) instead of rewriting an identical full generation.
        state = getattr(index, "_store_state", None)
        if state is not None:
            db._store_state = state
            db._store_token = db._serve_token()
        return db

    def _adopt(self, engine, spec: EngineSpec, build_args: dict) -> None:
        self._engine = engine
        self._spec = spec
        self._build_args = build_args
        self._engine_gen += 1
        # A new engine object shares no columns with whatever generation
        # chain was written for the old one — start a fresh chain (the
        # per-adoption subdirectory keeps old paths from being reused,
        # so a worker can never alias a stale mapped file).
        self._store_state = None
        self._store_token = None

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build_index(
        self,
        engine: str = "auto",
        k: int | str = "auto",
        interests: Iterable[LabelSeq] | str = "auto",
        workload: list[CPQ] | None = None,
        budget_bytes: int | None = None,
        seed: int = 7,
        workers: int | str = 1,
    ) -> GraphDatabase:
        """Build (or replace) the session's engine; returns ``self``.

        ``engine="auto"`` routes the choice of engine, ``k``, and
        interests through the advisor/cost-model policy; naming an engine
        still honours ``k="auto"`` / ``interests="auto"`` individually
        (each resolved from ``workload``, or from a synthesized template
        workload when none is given).

        ``workers`` > 1 (or ``"auto"`` = one per CPU) builds the index
        with the sharded parallel constructor on engines that support it
        (CPQx, iaCPQx, Path, iaPath — see :mod:`repro.core.parallel`);
        on CPQx this covers both build stages, including the
        k-path-bisimulation partition of Algorithm 1
        (:func:`repro.core.partition.compute_partition_codes`).  The
        result is pair-for-pair identical to the serial build.  The
        worker count is remembered, so rebuilds triggered by
        :meth:`update` on non-incremental engines stay parallel.
        """
        num_workers = resolve_workers(workers)  # validates early
        auto_k = k == "auto"
        auto_interests = isinstance(interests, str) and interests == "auto"
        if not auto_k and (not isinstance(k, int) or k < 1):
            raise SessionError(f"k must be a positive int or 'auto', got {k!r}")
        fixed_k = k if isinstance(k, int) else None
        if isinstance(interests, str) and not auto_interests:
            # A stray string would be character-split by frozenset() below.
            raise SessionError(
                f"interests must be 'auto' or an iterable of label-id "
                f"tuples, got {interests!r}"
            )
        self.selection = None

        if engine == "auto":
            selection = select_engine(
                self.graph,
                workload=workload,
                k=None if auto_k else k,  # type: ignore[arg-type]
                budget_bytes=budget_bytes,
                seed=seed,
            )
            self.selection = selection
            spec = engine_spec(selection.engine)
            chosen_k = selection.k if fixed_k is None else fixed_k
            resolved_auto_interests = selection.interests
        else:
            # Named engine: resolve k/interests individually from the
            # workload, without the full (and costlier) selection pass.
            spec = engine_spec(engine)
            queries: list[CPQ] | None = None
            if (auto_k and spec.uses_k) or (auto_interests and spec.uses_interests):
                queries = workload if workload else default_workload(self.graph, seed=seed)
            chosen_k = (advise_k(queries) if queries is not None else 2) if fixed_k is None else fixed_k
            resolved_auto_interests = (
                recommend_interests(
                    self.graph,
                    queries,
                    k=chosen_k,
                    budget_bytes=budget_bytes,
                ).interests
                if queries is not None and spec.uses_interests and auto_interests
                else frozenset()
            )

        chosen_interests = (
            (
                resolved_auto_interests
                if auto_interests
                else frozenset(interests)  # type: ignore[arg-type]
            )
            if spec.uses_interests
            else frozenset()
        )

        # Build and adopt under the exclusive lock: a concurrent reader
        # must never observe a half-installed engine (``_engine`` from
        # the new build with ``_spec`` still describing the old one),
        # and in-flight serve_batch evaluations finish first.
        with self._rwlock.write():
            start = time.perf_counter()
            built = spec.build(self.graph, k=chosen_k, interests=chosen_interests, workers=num_workers)
            self._build_seconds = time.perf_counter() - start
            self._adopt(
                built,
                spec,
                {
                    "k": chosen_k,
                    "interests": chosen_interests,
                    "workers": num_workers,
                },
            )
            self._invalidate_serving_snapshots()
        return self

    @property
    def engine(self):
        """The current engine object (builds ``engine="auto"`` on first use)."""
        if self._engine is None:
            self.build_index(engine="auto")
        return self._engine

    @property
    def engine_name(self) -> str | None:
        """Display name of the current engine, or ``None`` before build."""
        return self._spec.display_name if self._spec is not None else None

    @property
    def is_built(self) -> bool:
        return self._engine is not None

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def _resolve(self, query: CPQ | str) -> CPQ:
        if isinstance(query, str):
            return parse(query, self.graph.registry)
        if not is_resolved(query):
            return resolve(query, self.graph.registry)
        return query

    def query(
        self,
        query: CPQ | str,
        limit: int | None = None,
        source_filter: VertexDataFilter | None = None,
        target_filter: VertexDataFilter | None = None,
    ) -> ResultSet:
        """Parse (if text) and wrap ``query`` in a lazy :class:`ResultSet`.

        Nothing is evaluated until the result set is consumed (iterated,
        counted, ...); see :mod:`repro.db.resultset`.
        """
        return ResultSet(
            self.engine,
            self._resolve(query),
            limit=limit,
            source_filter=source_filter,
            target_filter=target_filter,
        )

    def _serve_one(self, query: CPQ, limit: int | None) -> ResultSet:
        """Evaluate one resolved query under the shared lock.

        The engine is looked up *inside* the critical section: a
        concurrent :meth:`update` on a non-incremental engine swaps
        ``self._engine`` for a rebuilt index, and binding earlier would
        let an in-flight batch evaluate a stale index against the
        already-mutated graph — a state matching no update boundary.
        """
        with self._rwlock.read():
            result = ResultSet(self._engine, query, limit=limit)
            result.pairs()
        return result

    def execute_batch(self, queries: Iterable[CPQ | str], limit: int | None = None) -> BatchResult:
        """Evaluate a workload eagerly, returning per-query results plus
        merged operator counters — the single-threaded serving path."""
        if not self.is_built:
            self.build_index()  # engine="auto", outside the read lock
        resolved = [self._resolve(query) for query in queries]
        start = time.perf_counter()
        results = [self._serve_one(query, limit) for query in resolved]
        return BatchResult(results, time.perf_counter() - start)

    def serve_batch(
        self,
        queries: Iterable[CPQ | str],
        workers: int | str = 8,
        limit: int | None = None,
        mode: str = "thread",
        timeout: float | None = None,
        retries: int = DEFAULT_RETRIES,
        on_error: str = "raise",
    ) -> BatchResult:
        """Evaluate a workload concurrently — the serving path.

        ``workers`` (``"auto"`` = one per CPU, the same sentinel
        :meth:`build_index` accepts) sets the concurrency; ``mode``
        selects the execution substrate:

        * ``"thread"`` (default) — a thread pool drains the query list;
          each query evaluates under the session's shared (read) lock,
          so a concurrent :meth:`update` is serialized against in-flight
          evaluations and every answer reflects the engine at an update
          boundary.  Correct under concurrency, but CPU-bound
          throughput stays GIL-bounded.
        * ``"process"`` — the batch is dispatched over a persistent,
          *supervised* pool of worker processes (:mod:`repro.serve`),
          each holding a picklable engine snapshot shipped once and
          refreshed through a version-token handshake whenever
          :meth:`update` (or a rebuild) retires it — true parallel
          reads.  The pool is created lazily, reused across batches,
          self-heals from worker crashes under a bounded restart
          budget, and is torn down by :meth:`close`.
        * ``"auto"`` — ``"process"`` when the engine is process-servable
          (:attr:`EngineSpec.process_servable`), more than one worker
          and CPU are available, the batch has at least
          :data:`~repro.serve.PROCESS_MODE_MIN_QUERIES` queries, and no
          recent pool exhausted its restart budget (the degradation
          cooldown, :data:`PROCESS_DEGRADED_COOLDOWN`; a successful
          process batch clears it early); ``"thread"`` otherwise.

        Fault tolerance (PR 7): ``timeout`` gives every query a deadline
        in seconds — *hard* in process mode (the hung worker is killed
        and restarted), *soft* in thread mode (the evaluation thread
        cannot be interrupted; its answer is abandoned).  A timed-out or
        errored query is retried with exponential backoff up to
        ``retries`` re-dispatches; deterministic library errors
        (:class:`~repro.errors.ReproError` — bad query, wrong k) are
        never retried.  What happens to a query that exhausts its budget
        is ``on_error``'s call: ``"raise"`` (default) raises the first
        failure's structured error for the whole batch; ``"partial"``
        returns a full-length batch whose failed slots are
        error-carrying result sets (:attr:`ResultSet.failed`; the batch
        lists them in :attr:`BatchResult.failures`).

        Results keep the input order, and every query that succeeds
        returns exactly the answers of the serial :meth:`execute_batch`
        on an unchanging graph, in every mode and under any fault
        (see ``docs/concurrency.md`` and ``docs/robustness.md``).
        """
        if mode not in SERVE_MODES:
            raise SessionError(f"mode must be one of {', '.join(SERVE_MODES)}, got {mode!r}")
        if on_error not in ON_ERROR_POLICIES:
            raise SessionError(
                f"on_error must be one of {', '.join(ON_ERROR_POLICIES)}, got {on_error!r}"
            )
        if timeout is not None and timeout <= 0:
            raise SessionError(f"timeout must be positive, got {timeout!r}")
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise SessionError(f"retries must be a non-negative int, got {retries!r}")
        num_workers = resolve_workers(workers) if isinstance(workers, str) else workers
        num_workers = max(1, num_workers)
        if not self.is_built:
            self.build_index()  # engine="auto" once, before going concurrent
        resolved = [self._resolve(query) for query in queries]
        chosen = self._resolve_serve_mode(mode, num_workers, len(resolved))
        injector = current_injector()
        start = time.perf_counter()
        if chosen == "process":
            slots = self._serve_batch_process(
                resolved, num_workers, limit, timeout, retries, injector
            )
        else:
            slots = self._serve_batch_thread(
                resolved, num_workers, limit, timeout, retries, injector
            )
        results: list[ResultSet] = []
        for query, slot in zip(resolved, slots, strict=True):
            if isinstance(slot, ServeFailure):
                if on_error == "raise":
                    raise slot.error
                results.append(ResultSet.from_error(self._engine, query, limit, slot.error))
            else:
                results.append(slot)
        return BatchResult(results, time.perf_counter() - start)

    def _serve_batch_thread(
        self,
        resolved: list[CPQ],
        workers: int,
        limit: int | None,
        timeout: float | None,
        retries: int,
        injector: FaultInjector | None,
    ) -> list[ResultSet | ServeFailure]:
        """Thread-mode batch with (soft) deadlines and retries.

        Threads cannot be killed, so a deadline here abandons the
        in-flight evaluation (its thread finishes in the background and
        the answer is discarded) rather than interrupting it; the
        executor is shut down without waiting when any evaluation was
        abandoned.  Deterministic library errors
        (:class:`~repro.errors.ReproError`) are not retried — re-running
        a malformed query cannot succeed — and propagate unwrapped, as
        they always have from this path.
        """
        outcomes: list[ResultSet | ServeFailure | None] = [None] * len(resolved)
        pool = ThreadPoolExecutor(max_workers=workers)
        abandoned = False

        def settle(index: int, attempts: int, error: ServingError) -> None:
            if attempts <= retries:
                time.sleep(min(RETRY_BACKOFF_BASE * (2 ** (attempts - 1)), RETRY_BACKOFF_CAP))
                pending.append((index, attempts))
                if injector is not None:
                    injector.note("query.retried")
            else:
                outcomes[index] = ServeFailure(index, error, attempts)
                if injector is not None:
                    injector.note("query.failed")

        try:
            pending: list[tuple[int, int]] = [(index, 0) for index in range(len(resolved))]
            while pending:
                submitted = []
                for index, attempts in pending:
                    future = pool.submit(self._serve_one, resolved[index], limit)
                    deadline = None if timeout is None else time.monotonic() + timeout
                    submitted.append((future, index, attempts + 1, deadline))
                pending = []
                for future, index, attempts, deadline in submitted:
                    remaining = (
                        None if deadline is None else max(0.0, deadline - time.monotonic())
                    )
                    try:
                        outcomes[index] = future.result(remaining)
                    except FuturesTimeout:  # noqa: PERF203 - per-query deadline
                        abandoned = True
                        settle(
                            index,
                            attempts,
                            QueryTimeoutError(
                                timeout=timeout, query_index=index, attempts=attempts
                            ),
                        )
                    except ReproError:
                        raise  # deterministic library error: retrying cannot help
                    except Exception as exc:
                        error = ServingError(
                            f"query evaluation failed: {exc}",
                            query_index=index,
                            attempts=attempts,
                        )
                        error.__cause__ = exc
                        settle(index, attempts, error)
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        # Every index was settled to a result or a permanent failure.
        return cast("list[ResultSet | ServeFailure]", outcomes)

    # ------------------------------------------------------------------
    # process-based serving (mode="process"; see repro.serve)
    # ------------------------------------------------------------------
    @property
    def _process_degraded(self) -> bool:
        """Whether ``mode="auto"`` is currently demoted to threads.

        True while the degradation cooldown runs; expires on its own
        (``time.monotonic()`` passing the deadline) or early, when a
        successful process batch resets the deadline.
        """
        return time.monotonic() < self._process_degraded_until

    def _resolve_serve_mode(self, mode: str, workers: int, queries: int) -> str:
        """Resolve ``"auto"`` and validate ``"process"`` eligibility."""
        servable = self._spec is not None and self._spec.process_servable
        if mode == "process":
            if not servable:
                raise SessionError(
                    f"engine {self.engine_name!r} is not process-servable "
                    f"(EngineSpec.process_servable is False); use "
                    f"mode='thread'"
                )
            return "process"
        if (
            mode == "auto"
            and servable
            and not self._process_degraded
            and workers > 1
            and (os.cpu_count() or 1) > 1
            and queries >= PROCESS_MODE_MIN_QUERIES
        ):
            return "process"
        return "thread"

    def _serve_token(self) -> ServeToken:
        """The freshness token process workers validate queries against."""
        return session_token(self._engine, self._engine_gen)

    def _store_generation_path(self, engine) -> str | None:
        """The store generation path covering the current serve token.

        Called under the shared lock (engine frozen).  Returns None when
        zero-copy serving does not apply — non-persistable engine, the
        escape hatch flipped, or a generation write failing (the batch
        then falls back to pickled-snapshot shipping; correctness never
        depends on the store).  Otherwise writes at most one generation
        per serve token: a full file for a fresh engine, a delta holding
        only the classes lazy maintenance replaced since the last one,
        or nothing at all when the state on disk already matches.
        """
        if not self._store_serving or self._spec is None or not self._spec.persistable:
            return None
        token = self._serve_token()
        with self._store_lock:
            if self._store_token == token and self._store_state is not None:
                return str(self._store_state.path)
            from repro.store import write_generation

            if self._store_dir is None:
                self._store_dir = tempfile.mkdtemp(prefix="repro-store-")
            subdir = f"g{self._engine_gen:04d}"
            if self._store_respools:
                # After a worker-side open failure the fresh chain must
                # start at a path no worker has ever mapped: workers
                # skip re-opening a path they already hold, so reusing
                # gNNNN/gen-000001.rsx could alias old columns to a new
                # token.
                subdir = f"{subdir}-r{self._store_respools}"
            directory = os.path.join(self._store_dir, subdir)
            try:
                os.makedirs(directory, exist_ok=True)
                state = write_generation(engine, directory, self._store_state)
            except (OSError, ReproError):
                return None
            self._store_state = state
            self._store_token = token
            return str(state.path)

    def _ensure_process_pool(self, workers: int) -> ProcessServingPool:
        """The session's serving pool, (re)built to the asked worker count."""
        with self._pool_lock:
            pool = self._proc_pool
            if pool is not None and (pool.closed or pool.workers != workers):
                pool.close()
                pool = None
            if pool is None:
                pool = self._proc_pool = ProcessServingPool(workers)
            return pool

    def _serve_batch_process(
        self,
        resolved: list[CPQ],
        workers: int,
        limit: int | None,
        timeout: float | None,
        retries: int,
        injector: FaultInjector | None,
    ) -> list[ResultSet | ServeFailure]:
        """Dispatch one resolved batch over the worker-process pool.

        The whole dispatch runs under the shared lock: a concurrent
        :meth:`update` drains it first (writer preference), then moves
        the serve token, so the next batch re-ships fresh snapshots —
        no answer in this batch can mix pre- and post-update state.
        Pool creation/replacement happens *before* the lock is taken:
        it is engine-independent (the token handshake covers an update
        landing in between), and spawning or joining worker processes
        under the shared side would stall a queued writer — and, via
        writer preference, every other reader — for the whole pool
        lifecycle.

        A pool that exhausted its restart budget during the batch
        finished it in-parent (same answers, no parallelism); the
        session then retires the pool and arms the degradation cooldown
        so ``mode="auto"`` routes batches to threads until it expires
        (or a successful explicit process batch clears it early).
        """
        pool = self._ensure_process_pool(workers)
        map_failures_before = pool.map_failures
        with self._rwlock.read():
            engine = self._engine
            outcomes = pool.serve(
                engine,
                self._serve_token(),
                resolved,
                limit,
                timeout=timeout,
                retries=retries,
                injector=injector,
                store_path=self._store_generation_path(engine),
            )
        if pool.map_failures > map_failures_before:
            # A worker could not open the spooled generation chain
            # (corrupt, truncated, or deleted file): retire the chain so
            # the next batch re-spools a fresh full generation at a
            # never-mapped path.  The batch itself already recovered (or
            # surfaced typed failures) via snapshot fallback.
            with self._store_lock:
                self._store_state = None
                self._store_token = None
                self._store_respools += 1
        if pool.degraded:
            self._process_degraded_until = time.monotonic() + self.degraded_cooldown
            with self._pool_lock:
                if self._proc_pool is pool:
                    self._proc_pool = None
            pool.close()
        else:
            # A successful (or at least budget-respecting) process batch
            # is the probe that closes the degradation window early.
            self._process_degraded_until = 0.0
        return [
            outcome
            if isinstance(outcome, ServeFailure)
            else ResultSet.from_answers(engine, query, limit, outcome[0], outcome[1])
            for query, outcome in zip(resolved, outcomes, strict=True)
        ]

    def _invalidate_serving_snapshots(self) -> None:
        """Retire shipped worker snapshots (called under the write lock)."""
        with self._pool_lock:
            if self._proc_pool is not None and not self._proc_pool.closed:
                self._proc_pool.invalidate()

    def close(self) -> None:
        """Shut down the process-serving pool and serving-store files.

        The session itself stays usable — querying, updating, and even
        process-mode serving (which simply builds a fresh pool and, if
        needed, a fresh store generation) all still work.  Worker
        processes are daemonic, so an unclosed session cannot outlive
        the interpreter; ``close()`` just frees them eagerly.  Store
        generations written for serving live in a session temp
        directory and are removed here (a generation state pointing at
        a user-saved file — ``GraphDatabase.open`` — is kept);
        unlinking a file workers still map is safe, the pages live on.
        """
        with self._pool_lock:
            if self._proc_pool is not None:
                self._proc_pool.close()
                self._proc_pool = None
        with self._store_lock:
            if self._store_dir is not None:
                if self._store_state is not None and str(self._store_state.path).startswith(
                    self._store_dir
                ):
                    self._store_state = None
                    self._store_token = None
                shutil.rmtree(self._store_dir, ignore_errors=True)
                self._store_dir = None

    def __enter__(self) -> GraphDatabase:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def explain(self, query: CPQ | str) -> str:
        """The current engine's plan/profile report for ``query``."""
        return self.query(query).explain()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(
        self,
        add_edges: Iterable[Triple] = (),
        remove_edges: Iterable[Triple] = (),
        add_vertices: Iterable[Vertex] = (),
        remove_vertices: Iterable[Vertex] = (),
    ) -> GraphDatabase:
        """Apply graph updates and keep the engine consistent.

        Incremental engines (CPQx, iaCPQx) take each change through the
        lazy maintenance path of Sec. IV-E (:mod:`repro.core.maintenance`);
        non-incremental engines are rebuilt once after all changes, with
        the same build arguments.  Order: vertex additions, edge
        additions, edge removals, vertex removals (removing a vertex
        drops its incident edges, as the paper specifies).

        The whole batch runs under the session's exclusive (write)
        lock: in-flight :meth:`serve_batch` evaluations finish first,
        and readers arriving during the batch observe only its final
        state — copy-on-write semantics at the memo layer, where the
        ``(graph.version, engine epoch)`` token retires every cache
        populated against the pre-update engine.  The process-serving
        pool (if any) is drained the same way — its dispatch holds the
        shared lock — and its shipped worker snapshots are invalidated
        before the lock drops, so the next process-served batch
        re-ships fresh snapshots (see :mod:`repro.serve`).
        """
        with self._rwlock.write():
            updated = self._update_locked(add_edges, remove_edges, add_vertices, remove_vertices)
            self._invalidate_serving_snapshots()
            return updated

    def _update_locked(
        self,
        add_edges: Iterable[Triple],
        remove_edges: Iterable[Triple],
        add_vertices: Iterable[Vertex],
        remove_vertices: Iterable[Vertex],
    ) -> GraphDatabase:
        if self._engine is not None and self._spec is not None and self._spec.incremental:
            index = self._engine
            for v in add_vertices:
                index.insert_vertex(v)
            for v, u, label in add_edges:
                index.insert_edge(v, u, label)
            for v, u, label in remove_edges:
                index.delete_edge(v, u, label)
            for v in remove_vertices:
                index.delete_vertex(v)
            # Memoized evaluate/count answers are already retired by the
            # graph-version token; bump the engine epoch too so even
            # no-op update batches cannot serve a stale read.
            invalidate = getattr(index, "invalidate_cache", None)
            if invalidate is not None:
                invalidate()
            return self

        for v in add_vertices:
            self.graph.add_vertex(v)
        for v, u, label in add_edges:
            self.graph.add_edge(v, u, label)
        for v, u, label in remove_edges:
            self.graph.remove_edge(v, u, label)
        for v in remove_vertices:
            self.graph.remove_vertex(v)  # drops incident edges itself
        if self._engine is not None and self._spec is not None:
            start = time.perf_counter()
            built = self._spec.build(self.graph, **self._build_args)
            self._build_seconds = time.perf_counter() - start
            # Re-adopt (rather than assign) so the engine generation
            # moves: the graph version alone may not change for a
            # rebuild, and process-serving snapshots of the old engine
            # must read as stale.
            self._adopt(built, self._spec, self._build_args)
        return self

    def reload(self, path) -> GraphDatabase:
        """Hot-swap the session's graph and engine from a saved index file.

        The serving-daemon reload path: the new index (JSON or store
        format — :meth:`open` semantics) is loaded *outside* the lock,
        then adopted under the exclusive side, so in-flight served
        queries finish against the old generation and every later read
        sees only the new one.  ``_adopt`` moves the engine generation,
        which retires shipped worker snapshots through the serve-token
        handshake — no reader can mix the two indexes.
        """
        from repro.core.interest import InterestAwareIndex
        from repro.core.persistence import load_index

        index = load_index(path)
        key = "iacpqx" if isinstance(index, InterestAwareIndex) else "cpqx"
        with self._rwlock.write():
            self.graph = index.graph
            self._adopt(index, engine_spec(key), {"k": index.k})
            state = getattr(index, "_store_state", None)
            if state is not None:
                self._store_state = state
                self._store_token = self._serve_token()
            self._invalidate_serving_snapshots()
        return self

    # ------------------------------------------------------------------
    # persistence and introspection
    # ------------------------------------------------------------------
    def save(self, path, format: str = "json") -> None:
        """Persist the current engine (graph included) to ``path``.

        ``format="json"`` writes the checksummed JSON document
        (:func:`repro.core.persistence.save_index`); ``format="store"``
        writes the zero-copy columnar store file
        (:func:`repro.store.write_store`), which reopens via ``mmap``
        with no deserialization.  :meth:`open` reads either —
        it dispatches on the file's magic.
        """
        from repro.core.persistence import save_index

        if self._engine is None or self._spec is None:
            raise SessionError("no index built yet; call build_index() first")
        if not self._spec.persistable:
            raise SessionError(
                f"engine {self._spec.display_name!r} is not persistable; "
                f"persistable engines: cpqx, iacpqx"
            )
        if format == "store":
            from repro.store import write_store

            write_store(self._engine, path)
            return
        if format != "json":
            raise SessionError(f"unknown save format {format!r}; use 'json' or 'store'")
        save_index(self._engine, path)

    @property
    def stats(self) -> IndexStats:
        """A Table IV-style stats row for the current engine."""
        return stats_of(self.engine, build_seconds=self._build_seconds)

    def info(self) -> str:
        """Multi-line session summary: graph, engine, stats, selection."""
        lines = [f"graph: {self.graph}"]
        if self._engine is None:
            lines.append("engine: none built (available: " + ", ".join(available_engines()) + ")")
        else:
            lines.append(f"engine: {self.engine_name}")
            lines.append(self.stats.describe())
            interests = getattr(self._engine, "interests", None)
            if interests is not None:
                multi = sorted(s for s in interests if len(s) > 1)
                lines.append(f"interests: {len(interests)} ({len(multi)} multi-label)")
        if self.selection is not None:
            lines.append(self.selection.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        engine = self.engine_name or "unbuilt"
        return f"GraphDatabase(name={self.name!r}, engine={engine}, {self.graph})"
