"""Automatic engine/k/interest selection (``engine="auto"``).

Implements the paper's Sec. VII future-work direction — "adaptively
controls interests and k" — as the routing policy behind
``GraphDatabase.build_index(engine="auto")``:

1. a representative workload is taken from the caller (or synthesized
   from the Fig. 5 templates when none is given);
2. :func:`repro.core.advisor.advise_k` picks ``k`` from the workload's
   longest lookup chains;
3. the Thm. 4.2/4.3 estimators from :mod:`repro.core.costmodel` predict
   what a *full* CPQx would cost on this graph; if the prediction stays
   under the work ceiling the full index wins (it answers every CPQ_k
   query) and selection stops there;
4. only when the full index is rejected does
   :func:`repro.core.advisor.recommend_interests` pick the interest set
   under the optional byte budget, and the interest-aware index serves
   just the workload's sequences — exactly the trade Sec. V motivates
   with the "OOM" rows of Table IV.

The engine decision itself (steps 2–3) uses graph summary statistics
only (|V|, |E|, max degree, label count), so it is cheap even when
building the index would not be.  Interest recommendation measures each
candidate's actual relation size on the graph — that is what makes its
byte estimates honest — and therefore runs only on the path that needs
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.advisor import advise_k, recommend_interests
from repro.core.costmodel import construction_estimate, index_size_estimate
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelSeq
from repro.query.ast import CPQ

#: Default ceiling on the Thm. 4.3 construction work score before auto
#: selection abandons the full CPQx for the interest-aware variant.  The
#: unit is the cost model's RAM-model operation count, not seconds; the
#: default admits the paper's small/mid stand-ins and rejects graphs in
#: the regime where Table IV reports OOM for full indexes.
DEFAULT_WORK_CEILING = 5e8

#: Templates used to synthesize a stand-in workload when the caller has
#: no query log yet (same trio the CLI's ``--interests auto`` uses).
DEFAULT_TEMPLATES = ("C2", "T", "S")


@dataclass(frozen=True)
class AutoSelection:
    """The advisor's decision, with the numbers that drove it."""

    engine: str
    k: int
    interests: frozenset[LabelSeq]
    rationale: str
    estimates: dict

    def describe(self) -> str:
        """One-paragraph human-readable account of the decision."""
        interests = (
            f" ({len(self.interests)} interests)" if self.interests else ""
        )
        return (
            f"auto-selected engine={self.engine!r} k={self.k}"
            f"{interests}: {self.rationale}"
        )


def default_workload(
    graph: LabeledDigraph,
    templates: tuple[str, ...] = DEFAULT_TEMPLATES,
    count: int = 5,
    seed: int = 7,
) -> list[CPQ]:
    """A stand-in workload from the paper's query templates."""
    from repro.query.workloads import random_template_queries

    queries: list[CPQ] = []
    for position, template in enumerate(templates):
        queries.extend(
            wq.query for wq in random_template_queries(
                graph, template, count=count, seed=seed * 1009 + position
            )
        )
    return queries


def _full_index_estimates(graph: LabeledDigraph, k: int) -> dict:
    """Thm. 4.2/4.3 inputs predicted from graph summary statistics.

    ``|P≤k|`` is bounded above by both ``|V|²`` and the path-count bound
    ``2|E| · (2d)^(k-1)`` (the extended graph doubles edges and degree);
    ``γ`` by the number of distinct ≤k sequences over the extended label
    alphabet; ``|C|`` by ``|P≤k|`` (every class holds ≥ 1 pair).
    """
    num_vertices = max(1, graph.num_vertices)
    num_edges = max(1, graph.num_edges)
    degree = max(1, graph.max_degree())
    labels = max(1, len(tuple(graph.labels_used())))
    pairs = min(num_vertices ** 2, 2 * num_edges * (2 * degree) ** (k - 1))
    gamma = float(sum((2 * labels) ** i for i in range(1, k + 1)))
    classes = pairs  # worst case: singleton classes
    size = index_size_estimate(gamma, classes, pairs)
    construction = construction_estimate(k, degree, pairs, gamma, classes)
    return {
        "pairs_bound": pairs,
        "gamma_bound": gamma,
        "size_score": size.work,
        "construction_score": construction.work,
    }


def select_engine(
    graph: LabeledDigraph,
    workload: list[CPQ] | None = None,
    k: int | None = None,
    budget_bytes: int | None = None,
    work_ceiling: float = DEFAULT_WORK_CEILING,
    seed: int = 7,
) -> AutoSelection:
    """Choose engine, ``k``, and interests for ``graph`` and ``workload``."""
    queries = workload if workload else default_workload(graph, seed=seed)
    synthesized = not workload
    chosen_k = k if k is not None else advise_k(queries)
    estimates = _full_index_estimates(graph, chosen_k)
    estimates["workload_queries"] = len(queries)
    estimates["workload_synthesized"] = synthesized

    source = "synthesized template workload" if synthesized else "caller workload"
    if estimates["construction_score"] <= work_ceiling:
        # Full index accepted on summary statistics alone — don't pay for
        # interest recommendation (it measures relation sizes per
        # candidate sequence) when the result would be discarded.
        return AutoSelection(
            engine="cpqx",
            k=chosen_k,
            interests=frozenset(),
            rationale=(
                f"Thm. 4.3 construction estimate "
                f"{estimates['construction_score']:.2e} is within the work "
                f"ceiling {work_ceiling:.2e}; the full CPQx answers every "
                f"CPQ_{chosen_k} query ({source})"
            ),
            estimates=estimates,
        )

    recommendation = recommend_interests(
        graph, queries, k=chosen_k, budget_bytes=budget_bytes
    )
    estimates["interest_bytes"] = recommendation.estimated_bytes
    estimates["interest_coverage"] = recommendation.coverage()
    if recommendation.interests:
        engine = "iacpqx"
        rationale = (
            f"full-index construction estimate "
            f"{estimates['construction_score']:.2e} exceeds the ceiling "
            f"{work_ceiling:.2e} (the Table IV OOM regime); indexing the "
            f"{len(recommendation.interests)} advisor-chosen interests "
            f"covers {recommendation.coverage():.0%} of the {source}"
        )
    else:
        engine = "bfs"
        rationale = (
            "graph too large for a full index and the workload yields no "
            "multi-label interests; falling back to index-free evaluation"
        )
    return AutoSelection(
        engine=engine,
        k=chosen_k,
        interests=recommendation.interests,
        rationale=rationale,
        estimates=estimates,
    )
