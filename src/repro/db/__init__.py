"""``repro.db`` — the :class:`GraphDatabase` session facade.

One front door for every engine in the package: open a graph, build an
index (``engine="auto"`` routes through the advisor and cost model),
query it lazily, update it through the paper's lazy maintenance, save
and reopen it.  See :mod:`repro.db.session` for the life cycle,
:mod:`repro.db.registry` for the plugin-style engine registry, and
:mod:`repro.db.auto` for the selection policy.
"""

from repro.db.auto import AutoSelection, default_workload, select_engine
from repro.db.registry import (
    EngineSpec,
    available_engines,
    engine_spec,
    register_engine,
    unregister_engine,
)
from repro.db.resultset import ResultSet
from repro.db.session import BatchResult, GraphDatabase

__all__ = [
    "AutoSelection",
    "BatchResult",
    "EngineSpec",
    "GraphDatabase",
    "ResultSet",
    "available_engines",
    "default_workload",
    "engine_spec",
    "register_engine",
    "select_engine",
    "unregister_engine",
]
