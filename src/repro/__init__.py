"""repro — reproduction of "Language-aware Indexing for Conjunctive Path
Queries" (Sasaki, Fletcher, Onizuka; ICDE 2022).

Public API quick reference — the :class:`GraphDatabase` session facade
is the front door::

    from repro import GraphDatabase

    db = GraphDatabase.from_triples([("a", "b", "f"), ("b", "a", "f")])
    db.build_index(engine="auto")           # advisor + cost-model routing
    answers = db.query("(f . f) & id")      # lazy ResultSet
    print(answers.count(), answers.explain())
    db.update(add_edges=[("b", "c", "f")])  # lazy maintenance (Sec. IV-E)
    db.save("graph.idx")

.. deprecated:: 1.1
   The direct engine entry points (``CPQxIndex.build(...)``,
   ``InterestAwareIndex.build(...)``, ``PathIndex.build(...)``,
   ``BFSEngine(graph)``, ...) remain importable from this module and
   fully supported as the low-level API, but new code should go through
   :class:`GraphDatabase` / ``db.build_index(engine=...)`` — every
   engine is reachable by registry key (``"cpqx"``, ``"iacpqx"``,
   ``"path"``, ``"iapath"``, ``"turbohom"``, ``"tentris"``, ``"bfs"``,
   ``"relational"``), and the facade is where session-level features
   (auto selection, batching, persistence, maintenance routing) land.

Sub-packages:

* :mod:`repro.graph` — labeled digraphs, IO, generators, datasets;
* :mod:`repro.query` — the CPQ algebra, parser, reference semantics,
  templates, workloads;
* :mod:`repro.plan` — logical plans and the planner;
* :mod:`repro.core` — the paper's contribution: partitioning, CPQx,
  iaCPQx, executor, maintenance;
* :mod:`repro.baselines` — Path, iaPath, BFS, TurboHom++-style and
  Tentris-style engines;
* :mod:`repro.db` — the :class:`GraphDatabase` session facade, engine
  registry, and lazy result sets;
* :mod:`repro.bench` — the benchmark harness regenerating every table
  and figure of the evaluation.
"""

from repro.baselines import BFSEngine, InterestAwarePathIndex, PathIndex, TentrisEngine, TurboHomEngine
from repro.core import CPQxIndex, ExecutionStats, InterestAwareIndex, compute_partition
from repro.db import BatchResult, EngineSpec, GraphDatabase, ResultSet, available_engines, register_engine
from repro.graph import LabeledDigraph, LabelRegistry
from repro.graph.datasets import example_graph, load_dataset
from repro.query import evaluate, label, parse

__version__ = "1.1.0"

__all__ = [
    "BFSEngine",
    "BatchResult",
    "CPQxIndex",
    "EngineSpec",
    "ExecutionStats",
    "GraphDatabase",
    "InterestAwareIndex",
    "InterestAwarePathIndex",
    "LabelRegistry",
    "LabeledDigraph",
    "PathIndex",
    "ResultSet",
    "TentrisEngine",
    "TurboHomEngine",
    "__version__",
    "available_engines",
    "compute_partition",
    "evaluate",
    "example_graph",
    "label",
    "load_dataset",
    "parse",
    "register_engine",
]
