"""repro — reproduction of "Language-aware Indexing for Conjunctive Path
Queries" (Sasaki, Fletcher, Onizuka; ICDE 2022).

Public API quick reference::

    from repro import LabeledDigraph, CPQxIndex, parse

    g = LabeledDigraph.from_triples([("a", "b", "f"), ("b", "a", "f")])
    index = CPQxIndex.build(g, k=2)
    answers = index.evaluate(parse("(f . f) & id", g.registry))

Sub-packages:

* :mod:`repro.graph` — labeled digraphs, IO, generators, datasets;
* :mod:`repro.query` — the CPQ algebra, parser, reference semantics,
  templates, workloads;
* :mod:`repro.plan` — logical plans and the planner;
* :mod:`repro.core` — the paper's contribution: partitioning, CPQx,
  iaCPQx, executor, maintenance;
* :mod:`repro.baselines` — Path, iaPath, BFS, TurboHom++-style and
  Tentris-style engines;
* :mod:`repro.bench` — the benchmark harness regenerating every table
  and figure of the evaluation.
"""

from repro.baselines import (
    BFSEngine,
    InterestAwarePathIndex,
    PathIndex,
    TentrisEngine,
    TurboHomEngine,
)
from repro.core import (
    CPQxIndex,
    ExecutionStats,
    InterestAwareIndex,
    compute_partition,
)
from repro.graph import LabeledDigraph, LabelRegistry
from repro.graph.datasets import example_graph, load_dataset
from repro.query import evaluate, label, parse

__version__ = "1.0.0"

__all__ = [
    "BFSEngine",
    "CPQxIndex",
    "ExecutionStats",
    "InterestAwareIndex",
    "InterestAwarePathIndex",
    "LabelRegistry",
    "LabeledDigraph",
    "PathIndex",
    "TentrisEngine",
    "TurboHomEngine",
    "__version__",
    "compute_partition",
    "evaluate",
    "example_graph",
    "label",
    "load_dataset",
    "parse",
]
