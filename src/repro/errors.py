"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch every failure mode of this package with a single ``except`` clause
while still being able to discriminate on the specific subclass.

The fault-tolerance layer (PR 7) structured the serving/build errors:
:class:`ServingError` and :class:`IndexBuildError` carry the failure's
*context* — which worker, which query, how many attempts — as typed
attributes (rendered into the message), so a retry policy or an
operator reading a log can act on them without parsing strings, and
:meth:`ReproError.cause_chain` walks the ``__cause__`` links the
recovery paths preserve.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""

    def cause_chain(self) -> list[BaseException]:
        """The explicit ``raise ... from ...`` chain, outermost first.

        Starts at this exception and follows ``__cause__`` (falling back
        to a non-suppressed ``__context__``), so a supervisor-surfaced
        error can be traced back to the worker-side root cause.
        """
        chain: list[BaseException] = [self]
        seen = {id(self)}
        current: BaseException = self
        while True:
            nxt = current.__cause__
            if nxt is None and not current.__suppress_context__:
                nxt = current.__context__
            if nxt is None or id(nxt) in seen:
                return chain
            chain.append(nxt)
            seen.add(id(nxt))
            current = nxt


def _context_suffix(parts: list[tuple[str, object]]) -> str:
    """Render ``[key=value, ...]`` for the non-``None`` context fields."""
    present = [f"{key}={value}" for key, value in parts if value is not None]
    return f" [{', '.join(present)}]" if present else ""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown vertex, duplicate edge...)."""


class UnknownVertexError(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"unknown vertex: {vertex!r}")
        self.vertex = vertex


class UnknownLabelError(GraphError):
    """Raised when a label name or id is not present in the label registry."""

    def __init__(self, label: object) -> None:
        super().__init__(f"unknown label: {label!r}")
        self.label = label


class QuerySyntaxError(ReproError):
    """Raised by the CPQ parser on malformed query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = "" if position is None else f" at position {position}"
        super().__init__(f"{message}{location}")
        self.position = position


class QueryDiameterError(ReproError):
    """Raised when a query's diameter exceeds what an index supports.

    CPQx built with parameter ``k`` can only answer queries whose label
    sequences decompose into chunks of length at most ``k``; the planner
    splits longer sequences automatically, so in practice this is raised
    only for ``k < 1`` misconfiguration.
    """


class IndexBuildError(ReproError):
    """Raised when index construction fails or its parameters are invalid.

    For failures on the sharded parallel build path the structured
    context names the failing shard and how many attempts were made
    before the error surfaced (the retry/serial-fallback ladder of
    :mod:`repro.core.parallel` exhausts first; see
    ``docs/robustness.md``).
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        attempts: int | None = None,
    ) -> None:
        super().__init__(
            message + _context_suffix([("shard", shard), ("attempts", attempts)])
        )
        self.shard = shard
        self.attempts = attempts


class MaintenanceError(ReproError):
    """Raised for invalid index update operations (e.g. deleting a missing edge)."""


class DatasetError(ReproError):
    """Raised by the dataset registry for unknown dataset names or bad scales."""


class UnknownEngineError(ReproError):
    """Raised by the engine registry when an engine name is not registered."""

    def __init__(self, name: object, known: tuple = ()) -> None:
        hint = f"; known engines: {', '.join(known)}" if known else ""
        super().__init__(f"unknown engine {name!r}{hint}")
        self.name = name
        self.known = known


class SessionError(ReproError):
    """Raised by :class:`repro.db.GraphDatabase` for invalid session usage
    (saving before an index is built, persisting a non-persistable engine...)."""


class ServingError(ReproError):
    """Raised by the serving paths when a query could not be answered.

    Carries the failure domain as structured context: ``worker_id`` (the
    serving worker slot, process mode), ``query_index`` (position in the
    submitted batch), and ``attempts`` (dispatches consumed before the
    error surfaced — the supervisor retries with backoff first; see
    :mod:`repro.serve.supervisor`).  All fields are optional: pool-level
    failures (a closed pool, an unpicklable engine snapshot) have no
    per-query context.
    """

    def __init__(
        self,
        message: str,
        *,
        worker_id: int | None = None,
        query_index: int | None = None,
        attempts: int | None = None,
    ) -> None:
        super().__init__(
            message
            + _context_suffix(
                [
                    ("worker", worker_id),
                    ("query", query_index),
                    ("attempts", attempts),
                ]
            )
        )
        self.worker_id = worker_id
        self.query_index = query_index
        self.attempts = attempts


class QueryTimeoutError(ServingError):
    """A served query exceeded its deadline (``serve_batch(timeout=...)``).

    In process mode the worker evaluating the query was killed and
    restarted (the deadline is *hard*); in thread mode the evaluation
    thread cannot be interrupted, so the answer is abandoned instead
    (the deadline is *soft* — see ``docs/robustness.md``).
    """

    def __init__(
        self,
        message: str = "query deadline exceeded",
        *,
        timeout: float | None = None,
        worker_id: int | None = None,
        query_index: int | None = None,
        attempts: int | None = None,
    ) -> None:
        if timeout is not None:
            message = f"{message} ({timeout:g}s)"
        super().__init__(
            message,
            worker_id=worker_id,
            query_index=query_index,
            attempts=attempts,
        )
        self.timeout = timeout


class PersistenceError(ReproError):
    """Raised for malformed or incompatible index files.

    Historically defined in :mod:`repro.core.persistence`, which still
    re-exports it; it lives here so :class:`CorruptIndexError` can join
    the hierarchy without import cycles.
    """


class CorruptIndexError(PersistenceError):
    """An index file failed integrity checking on ``open()``.

    Raised by :func:`repro.core.persistence.load_index` when the file is
    truncated (payload shorter than the header's byte count), bit-flipped
    (checksum mismatch), or carries the wrong magic — instead of
    unpickling/parsing garbage into a half-built index.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"{path}: corrupt index file: {reason}")
        self.path = path
        self.reason = reason
