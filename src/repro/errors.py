"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch every failure mode of this package with a single ``except`` clause
while still being able to discriminate on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown vertex, duplicate edge...)."""


class UnknownVertexError(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"unknown vertex: {vertex!r}")
        self.vertex = vertex


class UnknownLabelError(GraphError):
    """Raised when a label name or id is not present in the label registry."""

    def __init__(self, label: object) -> None:
        super().__init__(f"unknown label: {label!r}")
        self.label = label


class QuerySyntaxError(ReproError):
    """Raised by the CPQ parser on malformed query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = "" if position is None else f" at position {position}"
        super().__init__(f"{message}{location}")
        self.position = position


class QueryDiameterError(ReproError):
    """Raised when a query's diameter exceeds what an index supports.

    CPQx built with parameter ``k`` can only answer queries whose label
    sequences decompose into chunks of length at most ``k``; the planner
    splits longer sequences automatically, so in practice this is raised
    only for ``k < 1`` misconfiguration.
    """


class IndexBuildError(ReproError):
    """Raised when index construction parameters are invalid."""


class MaintenanceError(ReproError):
    """Raised for invalid index update operations (e.g. deleting a missing edge)."""


class DatasetError(ReproError):
    """Raised by the dataset registry for unknown dataset names or bad scales."""


class UnknownEngineError(ReproError):
    """Raised by the engine registry when an engine name is not registered."""

    def __init__(self, name: object, known: tuple = ()) -> None:
        hint = f"; known engines: {', '.join(known)}" if known else ""
        super().__init__(f"unknown engine {name!r}{hint}")
        self.name = name
        self.known = known


class SessionError(ReproError):
    """Raised by :class:`repro.db.GraphDatabase` for invalid session usage
    (saving before an index is built, persisting a non-persistable engine...)."""


class ServingError(ReproError):
    """Raised by the process-based serving path (:mod:`repro.serve`) when a
    worker process fails — an evaluation error shipped back over the pipe,
    or a worker that died without reporting."""
