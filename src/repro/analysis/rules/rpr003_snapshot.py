"""RPR003 — snapshot/pickle safety for engine classes.

Process serving ships an **engine snapshot** — the engine pickled minus
its lock-bearing caches — to worker processes.  ``EngineBase`` drops
its two memo LRUs in ``__getstate__``; an engine subclass that attaches
its *own* lock (or lock-bearing cache) in ``__init__`` must likewise
drop it, or every process-mode batch dies with an unpicklable-state
error (or worse, ships a lock silently re-armed in the worker).

The rule scopes itself to classes that matter for pickling:

* any class transitively deriving from ``EngineBase`` (resolved by name
  through the project-wide class hierarchy) that assigns a lock-bearing
  attribute in ``__init__`` must define a ``__getstate__`` that drops
  that attribute;
* any class defining its own ``__getstate__`` is checked the same way —
  a lock-bearing attribute it assigns but never drops is a latent
  pickling failure regardless of the hierarchy.

Classes that are never pickled (pools, locks themselves, the session)
carry locks legitimately and are not flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ParsedModule, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Constructor names whose instances cannot cross a process boundary.
LOCKISH_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "RWLock",
        "LRUCache",
    }
)


def _lockish_attrs(init: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, ast.AST]:
    """``self.X = Lock()``-style assignments in ``__init__``: attr → node."""
    attrs: dict[str, ast.AST] = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name not in LOCKISH_CONSTRUCTORS:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs[target.attr] = node
    return attrs


def _dropped_attrs(getstate: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Attribute names a ``__getstate__`` body mentions as string keys.

    Covers the project's drop idioms — ``state.pop("_attr", None)``,
    ``del state["_attr"]``, ``state["_attr"] = None`` — by collecting
    every string constant in the body; mentioning the attribute at all
    is taken as handling it.
    """
    mentioned: set[str] = set()
    for node in ast.walk(getstate):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentioned.add(node.value)
    return mentioned


class SnapshotSafetyRule(Rule):
    """Engine classes must drop lock-bearing state in ``__getstate__``."""

    rule_id = "RPR003"
    title = "snapshot/pickle safety (locks dropped in __getstate__)"

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, project, node))
        return findings

    def _check_class(
        self, module: ParsedModule, project: ProjectContext, class_node: ast.ClassDef
    ) -> list[Finding]:
        init = None
        getstate = None
        for item in class_node.body:
            if isinstance(item, ast.FunctionDef | ast.AsyncFunctionDef):
                if item.name == "__init__":
                    init = item
                elif item.name == "__getstate__":
                    getstate = item
        if init is None:
            return []
        lockish = _lockish_attrs(init)
        if not lockish:
            return []
        is_engine = project.is_engine_class(class_node.name)
        if getstate is None and not is_engine:
            return []

        if getstate is None:
            return [
                self.finding(
                    module,
                    node,
                    f"engine class {class_node.name!r} assigns lock-bearing "
                    f"attribute {attr!r} in __init__ but defines no "
                    f"__getstate__ dropping it; process-serving snapshots "
                    f"of this engine will fail to pickle",
                )
                for attr, node in lockish.items()
            ]
        dropped = _dropped_attrs(getstate)
        return [
            self.finding(
                module,
                node,
                f"{class_node.name!r} assigns lock-bearing attribute "
                f"{attr!r} in __init__ but its __getstate__ never drops "
                f"it (expected state.pop({attr!r}, None) or equivalent)",
            )
            for attr, node in lockish.items()
            if attr not in dropped
        ]
