"""RPR006 — fault-path hygiene in the serving and sharded-build layers.

The fault-tolerance contract (``docs/robustness.md``) is that failures
are *contained, then surfaced*: a worker that catches a broad exception
must either re-raise it, return it as a tagged value, ship it over its
pipe, or fold it into a structured error — it must never swallow it.  A
silently-dropped exception in ``serve/`` or ``core/parallel.py`` turns a
crashed query into a hang (the dispatcher waits forever for a reply that
was eaten) or a wrong answer (a shard that "succeeded" with no output).

Within the serving package and the sharded-build driver this rule flags
any ``except Exception:`` / ``except BaseException:`` / bare ``except:``
handler that does none of the following:

* re-raise (a ``raise`` statement anywhere in the handler body);
* return from the handler (tagged-value protocols like
  ``("err", traceback)``);
* ship the failure over a pipe (a ``.send(...)`` call);
* reference the bound exception name (``except Exception as exc`` with
  ``exc`` used — wrapping it into a structured error counts).

Narrow handlers (``except OSError:`` etc.) are out of scope — they
encode a deliberate local decision.  Genuinely intentional broad
swallows carry an inline ``# repro-lint: disable=RPR006``.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ParsedModule, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Exception names whose handlers are broad enough to need an outcome.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or one naming Exception/BaseException (incl. tuples)."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(
        isinstance(item, ast.Name) and item.id in BROAD_NAMES for item in candidates
    )


def _handler_disposes(handler: ast.ExceptHandler) -> bool:
    """Does the handler re-raise, return, send, or use the bound exception?"""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise | ast.Return):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
            ):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
            ):
                return True
    return False


class FaultPathHygieneRule(Rule):
    """Broad exception handlers on fault paths must surface the failure."""

    rule_id = "RPR006"
    title = "fault-path hygiene (no swallowed broad exceptions in serve/parallel)"

    def applies_to(self, path: str) -> bool:
        """The serving package plus the sharded-build driver."""
        return "repro/serve/" in path or path.endswith("repro/core/parallel.py")

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        return [
            self.finding(
                module,
                handler,
                "broad exception handler swallows the failure; on a fault "
                "path it must re-raise, return/send a tagged error, or wrap "
                "the bound exception into a structured error (see "
                "docs/robustness.md) — or carry an inline suppression",
            )
            for handler in ast.walk(module.tree)
            if isinstance(handler, ast.ExceptHandler)
            and _is_broad(handler)
            and not _handler_disposes(handler)
        ]
