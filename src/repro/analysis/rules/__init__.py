"""Rule registry for the ``repro lint`` analyzer."""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.rpr001_locks import LockDisciplineRule
from repro.analysis.rules.rpr002_spawn import SpawnSafetyRule
from repro.analysis.rules.rpr003_snapshot import SnapshotSafetyRule
from repro.analysis.rules.rpr004_determinism import DeterminismRule
from repro.analysis.rules.rpr005_pairset import PairSetIntegrityRule
from repro.analysis.rules.rpr006_faultpaths import FaultPathHygieneRule

#: Every rule, in id order.  Instantiated fresh per run by the engine.
ALL_RULES: tuple[type[Rule], ...] = (
    LockDisciplineRule,
    SpawnSafetyRule,
    SnapshotSafetyRule,
    DeterminismRule,
    PairSetIntegrityRule,
    FaultPathHygieneRule,
)

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "FaultPathHygieneRule",
    "LockDisciplineRule",
    "PairSetIntegrityRule",
    "Rule",
    "SnapshotSafetyRule",
    "SpawnSafetyRule",
]
