"""Rule base class for the ``repro lint`` analyzer.

A rule encodes one project invariant as a per-file AST check.  Rules
declare *where* they apply through posix path suffixes:

* ``scope`` — when set, the rule only runs on files whose posix path
  ends with one of the suffixes (e.g. the determinism rule only covers
  the build/partition/parallel modules whose sharded == serial
  fingerprint identity depends on iteration order);
* ``exempt`` — files that are the invariant's *sanctioned home* (e.g.
  ``core/executor.py`` owns the memo-cache accessors that RPR001 bans
  everywhere else).

Suffix matching (rather than absolute paths) keeps the rules testable:
fixture trees under a tmp directory scope exactly like the real tree.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ParsedModule, ProjectContext
from repro.analysis.findings import Finding


class Rule:
    """One invariant check; subclasses implement :meth:`check`."""

    rule_id: str = "RPR000"
    title: str = ""
    #: Posix path suffixes the rule is limited to (None = every file).
    scope: tuple[str, ...] | None = None
    #: Posix path suffixes exempt from the rule (sanctioned homes).
    exempt: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on ``path`` (posix form)."""
        if any(path.endswith(suffix) for suffix in self.exempt):
            return False
        if self.scope is None:
            return True
        return any(path.endswith(suffix) for suffix in self.scope)

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        """Return every violation of this rule in ``module``."""
        raise NotImplementedError

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )
