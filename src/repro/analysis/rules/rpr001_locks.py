"""RPR001 — lock discipline for memo caches and session state.

Two invariants from the PR-2/PR-3 concurrency work:

* the token-guarded memo LRUs (``_memo_results`` / ``_memo_subplans``)
  and their attach helper ``_token_cache`` are owned by
  ``EngineBase``'s sanctioned accessors in ``core/executor.py``.  Any
  other module touching them bypasses the copy-on-write replacement
  that runs under ``_CACHE_ATTACH_LOCK`` — a reader could then observe
  a half-initialized cache or resurrect a stale one;
* the session state of ``db/session.py`` (``_engine`` / ``_spec`` /
  ``_build_args`` / ``_engine_gen``) is only ever assigned inside
  ``__init__`` and ``_adopt``, both of which run on the RWLock's
  exclusive side (or before the session is shared).  An assignment
  anywhere else would swap the engine under live readers.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ParsedModule, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: The memo attributes owned by EngineBase's accessors.
MEMO_ATTRS = frozenset({"_memo_results", "_memo_subplans"})

#: Session attributes that must only be assigned in the write path.
SESSION_ATTRS = frozenset({"_engine", "_spec", "_build_args", "_engine_gen"})

#: Functions of GraphDatabase sanctioned to assign session state.
SESSION_WRITERS = frozenset({"__init__", "_adopt"})

#: The sanctioned home of the memo-cache machinery.
EXECUTOR_FILE = "repro/core/executor.py"

#: The file whose session-state discipline is checked.
SESSION_FILE = "repro/db/session.py"


class LockDisciplineRule(Rule):
    """Memo caches and session state touched only via sanctioned paths."""

    rule_id = "RPR001"
    title = "lock discipline (memo caches, session state)"

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        findings: list[Finding] = []
        if not module.path.endswith(EXECUTOR_FILE):
            findings.extend(self._check_memo_access(module))
        if module.path.endswith(SESSION_FILE):
            findings.extend(self._check_session_writes(module))
        return findings

    def _check_memo_access(self, module: ParsedModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in MEMO_ATTRS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"memo cache {node.attr!r} accessed outside EngineBase's "
                        f"token-guarded accessors in core/executor.py; use "
                        f"_result_cache()/_subplan_cache() (or snapshot via "
                        f"__getstate__), never the attribute",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_token_cache"
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "_token_cache() called outside core/executor.py; the "
                        "copy-on-write cache replacement under _CACHE_ATTACH_LOCK "
                        "is EngineBase-internal",
                    )
                )
        return findings

    def _check_session_writes(self, module: ParsedModule) -> list[Finding]:
        findings: list[Finding] = []
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for func in class_node.body:
                if not isinstance(func, ast.FunctionDef | ast.AsyncFunctionDef):
                    continue
                if func.name in SESSION_WRITERS:
                    continue
                findings.extend(self._session_writes_in(module, func))
        return findings

    def _session_writes_in(
        self, module: ParsedModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign | ast.AnnAssign):
                targets = [node.target]
            findings.extend(
                self.finding(
                    module,
                    target,
                    f"session state {target.attr!r} assigned in "
                    f"{func.name!r}; only __init__ and _adopt (which run "
                    f"on the RWLock's exclusive side) may swap it",
                )
                for target in targets
                if isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in SESSION_ATTRS
            )
        return findings
