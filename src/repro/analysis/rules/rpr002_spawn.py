"""RPR002 — spawn safety: no fork, no unsanctioned process creation.

Forking a multi-threaded Python process is a deadlock hazard (another
thread may hold an internal lock at fork time), and the serving path
keeps reader threads alive exactly when pools get built.  The project
therefore creates worker processes only through an explicit
``multiprocessing.get_context(...)`` — the heuristic one-shot build
pools of ``core/parallel.py`` and the always-``spawn`` ``WorkerPool``
used by process serving.

This rule flags:

* any use of ``os.fork`` / ``os.forkpty`` (including ``from os import
  fork``);
* ``Pool``/``Process`` created directly on the ``multiprocessing``
  module (or imported from it), bypassing an explicit start context.
  Calls on a variable assigned from ``multiprocessing.get_context(...)``
  are the sanctioned pattern and pass.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ParsedModule, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: os functions that fork the interpreter.
FORK_NAMES = frozenset({"fork", "forkpty"})

#: multiprocessing entry points that pick the *default* start method.
POOL_NAMES = frozenset({"Pool", "Process"})


class SpawnSafetyRule(Rule):
    """Worker processes only via an explicit multiprocessing context."""

    rule_id = "RPR002"
    title = "spawn safety (no fork, explicit start contexts)"

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        os_aliases: set[str] = set()
        mp_aliases: set[str] = set()
        fork_names: dict[str, str] = {}
        pool_names: dict[str, str] = {}
        findings: list[Finding] = []

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "os":
                        os_aliases.add(alias.asname or "os")
                    elif alias.name == "multiprocessing":
                        mp_aliases.add(alias.asname or "multiprocessing")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "os":
                    for alias in node.names:
                        if alias.name in FORK_NAMES:
                            fork_names[alias.asname or alias.name] = alias.name
                elif node.module == "multiprocessing":
                    for alias in node.names:
                        if alias.name in POOL_NAMES:
                            pool_names[alias.asname or alias.name] = alias.name

        for node in ast.walk(module.tree):
            fork_name = self._fork_use(node, os_aliases, fork_names)
            if fork_name is not None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"os.{fork_name} forks the interpreter; forking with "
                        f"serving threads alive deadlocks — use the spawn-context "
                        f"WorkerPool (core/parallel.py) instead",
                    )
                )
                continue
            if isinstance(node, ast.Call):
                target = self._unsanctioned_target(node, mp_aliases, pool_names)
                if target is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"multiprocessing.{target} created without an explicit "
                            f"start context; use "
                            f"multiprocessing.get_context('spawn').{target}(...) "
                            f"(or parallel_map/WorkerPool, which do)",
                        )
                    )
        return findings

    @staticmethod
    def _fork_use(
        node: ast.AST, os_aliases: set[str], fork_names: dict[str, str]
    ) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and node.attr in FORK_NAMES
            and isinstance(node.value, ast.Name)
            and node.value.id in os_aliases
        ):
            return node.attr
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return fork_names.get(node.func.id)
        return None

    @staticmethod
    def _unsanctioned_target(
        node: ast.Call, mp_aliases: set[str], pool_names: dict[str, str]
    ) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in pool_names:
            return pool_names[func.id]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in POOL_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id in mp_aliases
        ):
            return func.attr
        return None
