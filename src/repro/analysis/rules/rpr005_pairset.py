"""RPR005 — sorted-column integrity for packed pair columns.

Every index stores its pair relations as sorted, duplicate-free
``array('q')`` columns of packed codes (``v_id << 32 | u_id``) — the
representation the merge-join executor, ``merge_code_columns``, and
``index_fingerprint`` all assume.  ``core/pairset.py`` owns that
invariant: ``PairSet.from_codes`` sorts and dedupes, ``PairSet``
instances are immutable views, and the few build helpers that
construct raw columns (paths/partition/parallel) hand them straight to
the canonicalizing assemblers.

Outside those sanctioned homes this rule flags:

* access to ``PairSet`` internals (``._codes`` / ``._codeset``) — the
  public iteration/membership API is the contract, the internals are
  representation;
* direct ``PairSet(...)`` construction — only ``from_codes`` /
  ``from_pairs`` guarantee the sorted-unique invariant;
* mutation of a ``codes`` / ``_codes`` column (``.append`` /
  ``.extend`` / ``.insert`` / ``.remove`` / ``.pop`` / ``.sort`` or a
  subscript store) — a sorted column mutated in place silently breaks
  binary-search lookups;
* raw ``array("q", ...)`` construction — packed-code columns are born
  only in the sanctioned build modules;
* raw ``mmap.mmap(...)`` / ``memoryview(...)`` column access outside
  the store package (PR 8) — mapped columns are created only by the
  store reader and adopted through ``PairSet.from_mapped``, so every
  consumer sees one column contract regardless of backing;
* raw ``np.ndarray`` / ``np.frombuffer`` handling outside the kernels
  package and the store package (PR 10) — vectorized column work is
  the kernels backend's job; everyone else speaks ``PairSet`` and
  ``array('q')`` columns and dispatches through
  ``repro.core.kernels``, so the numpy dependency stays optional.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ParsedModule, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: PairSet representation internals.
PRIVATE_ATTRS = frozenset({"_codes", "_codeset"})

#: In-place mutators that break a sorted column.
MUTATORS = frozenset({"append", "extend", "insert", "remove", "pop", "sort"})

#: Attribute names that hold packed-code columns.
COLUMN_ATTRS = frozenset({"codes", "_codes"})

#: Files allowed to construct raw array("q") pair columns.  The store
#: package joins the build modules: its reader's foreign-endian
#: fallback rebuilds owned columns byte-for-byte from mapped ones.
#: The kernels package (PR 10) is where the loops over raw columns
#: actually live now — both backends mint columns there.
ARRAY_ALLOWED = (
    "repro/core/pairset.py",
    "repro/core/paths.py",
    "repro/core/parallel.py",
    "repro/core/partition.py",
    "repro/core/kernels/",
    "repro/store/",
)

#: Files allowed to touch raw buffers (mmap / memoryview): the store
#: package creates mapped columns; pairset adopts and copies them; the
#: kernels backends view them (zero-copy ``np.frombuffer`` / the pure
#: gallop loops over ``memoryview('q')``).
BUFFER_ALLOWED = (
    "repro/core/pairset.py",
    "repro/core/kernels/",
    "repro/store/",
)

#: Files allowed to handle raw numpy arrays.  The kernels package is
#: the vectorization boundary; the store package may view mapped
#: columns when validating snapshots.  Everyone else dispatches
#: through ``repro.core.kernels`` so numpy stays an optional extra.
NUMPY_ALLOWED = (
    "repro/core/kernels/",
    "repro/store/",
)

#: numpy attributes whose use marks raw ndarray handling.
NUMPY_ATTRS = frozenset({"ndarray", "frombuffer"})

#: Names the numpy module is conventionally bound to.
NUMPY_ALIASES = frozenset({"np", "numpy"})


def _sanctioned(path: str, allowed: tuple[str, ...]) -> bool:
    return any(
        path.endswith(entry) or (entry.endswith("/") and entry in path)
        for entry in allowed
    )


class PairSetIntegrityRule(Rule):
    """Packed pair columns created and mutated only in sanctioned homes."""

    rule_id = "RPR005"
    title = "sorted-column integrity (PairSet internals, array('q') columns)"
    exempt = ("repro/core/pairset.py",)

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        findings: list[Finding] = []
        array_ok = _sanctioned(module.path, ARRAY_ALLOWED)
        buffer_ok = _sanctioned(module.path, BUFFER_ALLOWED)
        numpy_ok = _sanctioned(module.path, NUMPY_ALLOWED)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in PRIVATE_ATTRS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"PairSet internal {node.attr!r} accessed outside "
                        f"core/pairset.py; use the public iteration/membership "
                        f"API — the packed representation is private",
                    )
                )
            elif (
                not numpy_ok
                and isinstance(node, ast.Attribute)
                and node.attr in NUMPY_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in NUMPY_ALIASES
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raw numpy {node.attr!r} handling outside the kernels "
                        f"and store packages; vectorized column work lives in "
                        f"core/kernels/ — dispatch through repro.core.kernels "
                        f"so numpy stays optional",
                    )
                )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node, array_ok, buffer_ok))
            elif isinstance(node, ast.Assign | ast.AugAssign):
                findings.extend(self._check_store(module, node))
        return findings

    def _check_call(
        self, module: ParsedModule, node: ast.Call, array_ok: bool, buffer_ok: bool
    ) -> list[Finding]:
        func = node.func
        if not buffer_ok and (
            (isinstance(func, ast.Name) and func.id in {"memoryview", "mmap"})
            or (
                isinstance(func, ast.Attribute)
                and func.attr == "mmap"
                and isinstance(func.value, ast.Name)
                and func.value.id == "mmap"
            )
        ):
            return [
                self.finding(
                    module,
                    node,
                    "raw mmap/memoryview column access outside the store "
                    "package; mapped columns are created only by the store "
                    "reader and adopted via PairSet.from_mapped",
                )
            ]
        if isinstance(func, ast.Name) and func.id == "PairSet":
            return [
                self.finding(
                    module,
                    node,
                    "direct PairSet(...) construction outside core/pairset.py; "
                    "use PairSet.from_codes/from_pairs, which enforce the "
                    "sorted duplicate-free column invariant",
                )
            ]
        if (
            not array_ok
            and isinstance(func, ast.Name)
            and func.id == "array"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "q"
        ):
            return [
                self.finding(
                    module,
                    node,
                    "raw array('q') packed-code column constructed outside the "
                    "sanctioned build modules "
                    "(pairset/paths/partition/parallel/kernels); "
                    "build pairs there and go through PairSet.from_codes",
                )
            ]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in COLUMN_ATTRS
        ):
            return [
                self.finding(
                    module,
                    node,
                    f"in-place .{func.attr}(...) on packed column "
                    f"'.{func.value.attr}'; sorted columns are immutable once "
                    f"assembled — rebuild via PairSet.from_codes",
                )
            ]
        return []

    def _check_store(
        self, module: ParsedModule, node: ast.Assign | ast.AugAssign
    ) -> list[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        return [
            self.finding(
                module,
                target,
                f"subscript store into packed column "
                f"'.{target.value.attr}'; sorted columns are immutable "
                f"once assembled — rebuild via PairSet.from_codes",
            )
            for target in targets
            if isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in COLUMN_ATTRS
        ]
