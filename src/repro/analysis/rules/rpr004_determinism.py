"""RPR004 — deterministic iteration on the build/partition/parallel path.

The sharded == serial build contract (PRs 3/4) is *pair-for-pair
identity*, asserted via ``index_fingerprint`` and the bench-concurrent
gate.  That identity survives only because every order that escapes
into a stored artifact is made explicit: columns are sorted, classes
are renumbered canonically, shards merge in task order.  Iterating a
``set`` (hash order — salted per process for strings) and letting that
order *escape* into a list, a generated sequence, or a first-seen id
assignment silently breaks the contract.

The rule is a source × sink analysis, deliberately narrow to stay
silent on order-insensitive consumers (``set.add``, ``frozenset(...)``,
aggregations):

**Sources** — expressions statically known to iterate in hash order:
set/frozenset literals, comprehensions and constructor calls; names
annotated (or assigned) as sets; ``.items()`` / ``.values()`` of a
``dict[..., set[...]]``; calls to project functions whose annotated
return type is a set or a set-valued dict (resolved project-wide, so
``sequence_targets_from_source(...)`` types across modules).

**Sinks** — places where iteration order escapes:

* a ``for`` loop over a source whose body appends/extends, yields, or
  assigns first-seen ids via ``d.setdefault(key, len(d))``;
* a list comprehension over a source;
* ``list(source)`` or ``x.extend(source)`` (including a generator
  expression over a source).

The fix is always the same: wrap the iterable in ``sorted(...)`` (with
an explicit key for vertex pairs, the project uses ``key=repr``), which
also clears the tracked type.
"""

from __future__ import annotations

import ast

from repro.analysis.context import (
    KIND_DICT_OF_SETS,
    KIND_SET,
    ParsedModule,
    ProjectContext,
    classify_annotation,
)
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Set-producing builtins.
SET_BUILTINS = frozenset({"set", "frozenset"})

#: Builtins that return order-insensitive or explicitly ordered values.
ORDER_CLEARING_CALLS = frozenset({"sorted", "len", "sum", "min", "max", "any", "all"})

#: Set operators that propagate set-ness.
SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Simple statements whose expressions are scanned for sink patterns.
SIMPLE_STMTS = (
    ast.Expr,
    ast.Return,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Raise,
    ast.Assert,
    ast.Delete,
)


class DeterminismRule(Rule):
    """No unsorted set iteration may escape into ordered artifacts."""

    rule_id = "RPR004"
    title = "deterministic iteration (build/partition/parallel modules)"
    scope = (
        "repro/core/cpqx.py",
        "repro/core/interest.py",
        "repro/core/partition.py",
        "repro/core/parallel.py",
        "repro/core/paths.py",
        "repro/core/maintenance.py",
        "repro/baselines/path_index.py",
    )

    def check(self, module: ParsedModule, project: ProjectContext) -> list[Finding]:
        analyzer = _ModuleAnalyzer(self, module, project)
        analyzer.run()
        return analyzer.findings


class _ModuleAnalyzer:
    """One module's source × sink walk, scope-aware."""

    def __init__(
        self, rule: DeterminismRule, module: ParsedModule, project: ProjectContext
    ) -> None:
        self.rule = rule
        self.module = module
        self.project = project
        self.findings: list[Finding] = []
        self._reported: set[tuple[int, int]] = set()
        #: Innermost-last stack of name → kind bindings.
        self._scopes: list[dict[str, str | None]] = []

    def run(self) -> None:
        self._scopes.append({})
        self._walk_stmts(self.module.tree.body)
        self._scopes.pop()

    # ------------------------------------------------------------------
    # scope bookkeeping
    # ------------------------------------------------------------------
    def _bind(self, name: str, kind: str | None) -> None:
        self._scopes[-1][name] = kind

    def _kind_of_name(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------
    # expression typing
    # ------------------------------------------------------------------
    def _expr_kind(self, node: ast.expr | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self._kind_of_name(node.id)
        if isinstance(node, ast.Set | ast.SetComp):
            return KIND_SET
        if isinstance(node, ast.Call):
            return self._call_kind(node)
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
            left = self._expr_kind(node.left)
            right = self._expr_kind(node.right)
            if KIND_SET in (left, right):
                return KIND_SET
        return None

    def _call_kind(self, node: ast.Call) -> str | None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        if name in SET_BUILTINS:
            return KIND_SET
        if name in ORDER_CLEARING_CALLS:
            return None
        return self.project.return_kinds.get(name)

    def _iter_info(self, node: ast.expr) -> str | None:
        """How a for-loop iterable relates to set order.

        Returns "set" (the iterable itself is hash-ordered), "items" /
        "values" (a set-valued dict view whose *values* are
        hash-ordered), or None.
        """
        if self._expr_kind(node) == KIND_SET:
            return "set"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values")
            and self._expr_kind(node.func.value) == KIND_DICT_OF_SETS
        ):
            return node.func.attr
        return None

    def _bind_for_target(self, target: ast.expr, info: str | None) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, KIND_SET if info == "values" else None)
        elif isinstance(target, ast.Tuple):
            for position, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    value_slot = info == "items" and position == len(target.elts) - 1
                    self._bind(element.id, KIND_SET if value_slot else None)

    # ------------------------------------------------------------------
    # statement walk
    # ------------------------------------------------------------------
    def _walk_stmts(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.FunctionDef | ast.AsyncFunctionDef):
                self._walk_function(stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._scopes.append({})
                self._walk_stmts(stmt.body)
                self._scopes.pop()
            elif isinstance(stmt, ast.For | ast.AsyncFor):
                self._walk_for(stmt)
            elif isinstance(stmt, ast.While):
                self._check_expr_tree(stmt.test)
                self._walk_stmts(stmt.body)
                self._walk_stmts(stmt.orelse)
            elif isinstance(stmt, ast.If):
                self._check_expr_tree(stmt.test)
                self._walk_stmts(stmt.body)
                self._walk_stmts(stmt.orelse)
            elif isinstance(stmt, ast.With | ast.AsyncWith):
                for item in stmt.items:
                    self._check_expr_tree(item.context_expr)
                self._walk_stmts(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._walk_stmts(stmt.body)
                for handler in stmt.handlers:
                    self._walk_stmts(handler.body)
                self._walk_stmts(stmt.orelse)
                self._walk_stmts(stmt.finalbody)
            elif isinstance(stmt, SIMPLE_STMTS):
                self._handle_simple(stmt)

    def _walk_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scopes.append({})
        args = func.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            self._bind(arg.arg, classify_annotation(arg.annotation))
        self._walk_stmts(func.body)
        self._scopes.pop()

    def _handle_simple(self, stmt: ast.stmt) -> None:
        self._check_expr_tree(stmt)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._bind(target.id, self._expr_kind(stmt.value))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            self._bind(stmt.target.id, classify_annotation(stmt.annotation))

    def _walk_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        self._check_expr_tree(stmt.iter)
        info = self._iter_info(stmt.iter)
        if info == "set":
            sink = self._order_sink_in(stmt.body)
            if sink is not None:
                self._report(
                    stmt,
                    "iterates a set in hash order and the order escapes "
                    f"({self._sink_label(sink)}); wrap the iterable in sorted(...) "
                    "to make the stored order explicit",
                )
        self._bind_for_target(stmt.target, info)
        self._walk_stmts(stmt.body)
        self._walk_stmts(stmt.orelse)

    # ------------------------------------------------------------------
    # sink detection
    # ------------------------------------------------------------------
    @staticmethod
    def _sink_label(sink: ast.AST) -> str:
        if isinstance(sink, ast.Yield | ast.YieldFrom):
            return "yields in iteration order"
        if isinstance(sink, ast.Call) and isinstance(sink.func, ast.Attribute):
            if sink.func.attr == "setdefault":
                return "assigns first-seen ids via setdefault(..., len(...))"
            return f"builds an ordered sequence via .{sink.func.attr}(...)"
        return "escapes iteration order"

    def _order_sink_in(self, body: list[ast.stmt]) -> ast.AST | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Yield | ast.YieldFrom):
                    return node
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in ("append", "extend"):
                        return node
                    if (
                        node.func.attr == "setdefault"
                        and len(node.args) == 2
                        and isinstance(node.args[1], ast.Call)
                        and isinstance(node.args[1].func, ast.Name)
                        and node.args[1].func.id == "len"
                    ):
                        return node
        return None

    # ------------------------------------------------------------------
    # expression-level sinks (list comps, list(), .extend())
    # ------------------------------------------------------------------
    def _check_expr_tree(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.ListComp):
                self._check_comprehension(node)
            elif isinstance(node, ast.Call):
                self._check_consumer_call(node)

    def _check_comprehension(self, comp: ast.ListComp | ast.GeneratorExp) -> None:
        self._scopes.append({})
        for generator in comp.generators:
            info = self._iter_info(generator.iter)
            if info == "set":
                self._report(
                    comp,
                    "builds a list from a set iterated in hash order; wrap the "
                    "iterable in sorted(...) to make the stored order explicit",
                )
            self._bind_for_target(generator.target, info)
        self._scopes.pop()

    def _check_consumer_call(self, node: ast.Call) -> None:
        func = node.func
        is_list = isinstance(func, ast.Name) and func.id == "list"
        is_extend = isinstance(func, ast.Attribute) and func.attr == "extend"
        if not (is_list or is_extend) or not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.GeneratorExp):
            self._check_comprehension(arg)
        elif self._expr_kind(arg) == KIND_SET:
            self._report(
                node,
                "materializes a set into an ordered sequence in hash order; "
                "wrap it in sorted(...) to make the stored order explicit",
            )

    def _report(self, node: ast.AST, message: str) -> None:
        position = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        if position in self._reported:
            return
        self._reported.add(position)
        self.findings.append(self.rule.finding(self.module, node, message))
