"""Driver for the ``repro lint`` analyzer.

Discovers ``.py`` files, parses each once, builds the project-wide
context (class hierarchy, return-type kinds), dispatches every
applicable rule, and filters findings through inline suppressions:

    risky_call()  # repro-lint: disable=RPR004
    other_call()  # repro-lint: disable=RPR001,RPR004
    anything()    # repro-lint: disable=all

A suppression comment applies to findings anchored on its own line.
Baseline handling (the *other* suppression mechanism, for adopting the
analyzer on a tree with pre-existing findings) lives in
:mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.context import ParsedModule, ProjectContext, build_project_context
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, Rule
from repro.errors import ReproError

#: Inline suppression: ``# repro-lint: disable=RPR001,RPR004`` (or ``all``).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise ReproError(f"lint path does not exist: {path}")
    return sorted(files)


def parse_modules(files: list[Path]) -> list[ParsedModule]:
    """Parse each file once; syntax errors become :class:`ReproError`."""
    modules: list[ParsedModule] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # noqa: PERF203 - per-file error context
            raise ReproError(f"cannot parse {path}: {exc}") from exc
        modules.append(
            ParsedModule(path=path.as_posix(), tree=tree, lines=source.splitlines())
        )
    return modules


def suppressed_rules(module: ParsedModule, line: int) -> frozenset[str]:
    """Rule ids suppressed by an inline comment on ``line`` (1-based)."""
    if not 1 <= line <= len(module.lines):
        return frozenset()
    match = _SUPPRESS_RE.search(module.lines[line - 1])
    if match is None:
        return frozenset()
    return frozenset(token.strip() for token in match.group(1).split(",") if token.strip())


def _is_suppressed(module: ParsedModule, finding: Finding) -> bool:
    tokens = suppressed_rules(module, finding.line)
    return finding.rule in tokens or "all" in tokens


def run_rules(
    modules: list[ParsedModule],
    project: ProjectContext,
    rules: tuple[type[Rule], ...] = ALL_RULES,
) -> list[Finding]:
    """Run every applicable rule over every module; honor suppressions."""
    findings: list[Finding] = []
    instances = [rule_cls() for rule_cls in rules]
    for module in modules:
        for rule in instances:
            if not rule.applies_to(module.path):
                continue
            findings.extend(
                finding
                for finding in rule.check(module, project)
                if not _is_suppressed(module, finding)
            )
    return sorted(findings)


def run_lint(
    paths: list[str | Path], rules: tuple[type[Rule], ...] = ALL_RULES
) -> list[Finding]:
    """Full pipeline: discover → parse → project context → rules."""
    modules = parse_modules(discover_files(paths))
    project = build_project_context(modules)
    return run_rules(modules, project, rules)
