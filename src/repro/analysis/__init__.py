"""``repro lint`` — project-specific static analysis.

An AST-based analyzer (stdlib ``ast`` only, no runtime deps) that
enforces the concurrency, determinism, and snapshot-safety invariants
this project's correctness arguments rest on:

* **RPR001** — lock discipline: memo caches and session state are
  touched only through their sanctioned accessors;
* **RPR002** — spawn safety: no ``os.fork``, worker processes only via
  an explicit ``multiprocessing.get_context(...)``;
* **RPR003** — snapshot safety: engine classes drop lock-bearing
  attributes in ``__getstate__`` so process-serving snapshots pickle;
* **RPR004** — determinism: no unsorted set iteration escapes into
  ordered artifacts on the build/partition/parallel path;
* **RPR005** — sorted-column integrity: packed ``array('q')`` pair
  columns are created and mutated only in their sanctioned homes;
* **RPR006** — fault-path hygiene: broad exception handlers in the
  serving layer and the sharded-build driver must re-raise, return or
  send a tagged error, or wrap the bound exception — never swallow it.

See ``docs/static-analysis.md`` for the rule-by-rule rationale.
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, subtract_baseline, write_baseline
from repro.analysis.engine import discover_files, parse_modules, run_lint, run_rules
from repro.analysis.findings import Finding, render_json, render_text
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "discover_files",
    "load_baseline",
    "parse_modules",
    "render_json",
    "render_text",
    "run_lint",
    "run_rules",
    "subtract_baseline",
    "write_baseline",
]
