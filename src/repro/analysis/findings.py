"""Finding records produced by the ``repro lint`` static analyzer.

A finding pins one rule violation to a file position.  Paths are stored
in posix form relative to the lint invocation's working directory, so
findings render as the familiar clickable ``path:line:col`` prefix and
compare stably across machines.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line ``path:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def key(self) -> tuple[str, str, str]:
        """The baseline identity: rule + path + message (line-insensitive).

        Line numbers churn with every unrelated edit, so a committed
        baseline matches findings on what was reported and where, not on
        the exact line it happened to sit at when baselined.
        """
        return (self.rule, self.path, self.message)


def render_text(findings: list[Finding]) -> str:
    """Render findings one per line, sorted by position."""
    return "\n".join(f.render() for f in sorted(findings))


def render_json(findings: list[Finding]) -> str:
    """Render findings as a JSON array (machine-readable CI output)."""
    return json.dumps([asdict(f) for f in sorted(findings)], indent=2)
