"""Shared analysis context: parsed modules and the two-pass project view.

The analyzer parses every file once (:class:`ParsedModule`) and then
builds a :class:`ProjectContext` over the whole file set before any rule
runs.  Two cross-module facts the per-file rules need live here:

* the **class hierarchy by name**, so a rule can ask whether a class
  transitively derives from ``EngineBase`` without importing anything
  (engine subclasses are spread over ``core/`` and ``baselines/``);
* the **function/method return-kind map**, a coarse classification of
  annotated return types into "returns a set" / "returns a dict whose
  values are sets", which lets the determinism rule (RPR004) type a
  call like ``sequence_targets_from_source(...)`` across module
  boundaries.

Everything works on names, not imports: the analyzer never executes the
analyzed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Annotation heads treated as set-like for the determinism analysis.
SET_HEADS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"})

#: Annotation heads treated as dict-like containers.
DICT_HEADS = frozenset({"dict", "Dict", "defaultdict", "DefaultDict", "Mapping", "MutableMapping"})

#: The classification values used throughout: "set" means the value
#: iterates in hash order; "dict_of_sets" means the value is a mapping
#: whose *values* iterate in hash order.
KIND_SET = "set"
KIND_DICT_OF_SETS = "dict_of_sets"


def _head_name(node: ast.expr) -> str | None:
    """The rightmost simple name of an annotation head (``t.Set`` → Set)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def classify_annotation(node: ast.expr | None) -> str | None:
    """Coarsely classify a type annotation for order-sensitivity.

    Returns :data:`KIND_SET`, :data:`KIND_DICT_OF_SETS`, or None.  Union
    annotations (``X | Y``, ``Optional[X]``) classify as their non-None
    members when those agree.
    """
    if node is None:
        return None
    head = _head_name(node)
    if head in SET_HEADS:
        return KIND_SET
    if isinstance(node, ast.Subscript):
        value_head = _head_name(node.value)
        if value_head in SET_HEADS:
            return KIND_SET
        if value_head in DICT_HEADS:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                if classify_annotation(inner.elts[1]) == KIND_SET:
                    return KIND_DICT_OF_SETS
            return None
        if value_head == "Optional":
            return classify_annotation(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        kinds = {
            classify_annotation(side)
            for side in (node.left, node.right)
            if not (isinstance(side, ast.Constant) and side.value is None)
        }
        if len(kinds) == 1:
            return kinds.pop()
    return None


@dataclass
class ParsedModule:
    """One analyzed source file: its path, AST, and raw lines."""

    path: str
    tree: ast.Module
    lines: list[str]


@dataclass
class ProjectContext:
    """Cross-module facts collected before any rule runs."""

    #: class name → tuple of base-class simple names, project-wide.
    class_bases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: function/method simple name → return kind (see module docstring).
    return_kinds: dict[str, str] = field(default_factory=dict)

    def is_engine_class(self, name: str, root: str = "EngineBase") -> bool:
        """Does ``name`` transitively derive from ``root`` (by name)?"""
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.class_bases.get(current, ()))
        return False


def build_project_context(modules: list[ParsedModule]) -> ProjectContext:
    """Run the project-wide collection pass over every parsed module."""
    context = ProjectContext()
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    base_name
                    for base in node.bases
                    if (base_name := _head_name(base)) is not None
                )
                context.class_bases.setdefault(node.name, bases)
            elif isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
                kind = classify_annotation(node.returns)
                if kind is not None:
                    context.return_kinds.setdefault(node.name, kind)
    return context
