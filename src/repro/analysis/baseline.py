"""Baseline files: a committed allowance of pre-existing findings.

A baseline lets the analyzer gate *new* violations while a legacy
finding is being burned down: ``repro lint --write-baseline`` records
the current findings, and later runs subtract them.  Matching is by
``(rule, path, message)`` with multiplicity — line numbers are excluded
on purpose, so unrelated edits that shift a finding do not punch holes
in the allowance (see :meth:`repro.analysis.findings.Finding.key`).

The repository's own policy is an **empty baseline**: every invariant
rule runs clean on the real tree (asserted by the self-check test in
``tests/test_lint_cli.py``), and the baseline machinery exists for
downstream forks and for staging future, stricter rules.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import ReproError

#: Schema marker for the JSON file, bumped on incompatible changes.
BASELINE_VERSION = 1


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Record ``findings`` as the committed allowance at ``path``."""
    entries = [
        {"rule": rule, "path": file_path, "message": message}
        for rule, file_path, message in sorted(f.key() for f in findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline as a multiset of finding keys."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read lint baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ReproError(
            f"lint baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    allowance: Counter = Counter()
    for entry in payload.get("findings", ()):
        allowance[(entry["rule"], entry["path"], entry["message"])] += 1
    return allowance


def subtract_baseline(findings: list[Finding], allowance: Counter) -> list[Finding]:
    """Drop findings covered by the baseline (one allowance per entry)."""
    remaining = Counter(allowance)
    kept: list[Finding] = []
    for finding in sorted(findings):
        if remaining[finding.key()] > 0:
            remaining[finding.key()] -= 1
        else:
            kept.append(finding)
    return kept
