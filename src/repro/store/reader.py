"""Opening store files: mmap the columns, deserialize nothing.

:func:`open_store` maps each file in a generation chain read-only,
checks both region checksums, and rebuilds the engine around
zero-copy column views: every class's posting column becomes a
``memoryview(...).cast("q")`` slice of the mapped file, adopted by
:meth:`PairSet.from_mapped` without reading a byte of it eagerly.  The
pair→class map is *not* stored and *not* built here — the engines
materialize it lazily, and the serving read path never asks for it —
so opening is O(meta), independent of how many pairs the index holds.

The mapped views keep their backing ``mmap`` objects alive (buffer
exports pin them), so nothing here needs explicit lifetime management;
unlinking a mapped generation file is safe on POSIX, and the pages stay
shared between every process that mapped the same generation.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import sys
from array import array
from pathlib import Path

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.pairset import PairSet
from repro.errors import CorruptIndexError, PersistenceError
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelRegistry
from repro.serve.faults import current_injector
from repro.store.format import read_header
from repro.store.writer import StoreState

#: One loaded chain file: its meta document and mapped columns region.
_ChainFile = tuple[dict, memoryview]


def _load_file(path: Path, verify: bool) -> _ChainFile:
    injector = current_injector()
    if injector is not None and injector.fire("store.open"):
        raise CorruptIndexError(path, "injected store.open fault")
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:
            raise CorruptIndexError(path, f"cannot map file: {exc}") from exc
    buffer = memoryview(mapped)
    header = read_header(buffer, path)
    meta_bytes = bytes(buffer[header.meta_off : header.meta_off + header.meta_len])
    if hashlib.sha256(meta_bytes).digest() != header.meta_sha:
        raise CorruptIndexError(path, "meta checksum mismatch (bit corruption)")
    columns = buffer[header.cols_off : header.cols_off + header.cols_len]
    if verify and hashlib.sha256(columns).digest() != header.cols_sha:
        raise CorruptIndexError(path, "columns checksum mismatch (bit corruption)")
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptIndexError(path, f"malformed meta JSON: {exc}") from exc
    if meta.get("format") != "repro-store" or meta.get("version") != 1:
        raise CorruptIndexError(path, "meta does not describe a repro-store v1 file")
    return meta, columns


def _load_chain(path: Path, verify: bool) -> list[_ChainFile]:
    """The generation chain rooted at ``path``, oldest file first."""
    chain: list[_ChainFile] = []
    current = Path(path).resolve()
    seen = {current}
    while True:
        meta, columns = _load_file(current, verify)
        chain.append((meta, columns))
        parent_name = meta.get("delta_of")
        if parent_name is None:
            break
        injector = current_injector()
        if injector is not None and injector.fire("store.delta"):
            raise CorruptIndexError(path, f"injected delta-chain fault following {parent_name}")
        parent = (current.parent / parent_name).resolve()
        if parent in seen:
            raise CorruptIndexError(path, f"generation chain cycle through {parent}")
        if not parent.is_file():
            raise CorruptIndexError(path, f"missing parent generation {parent}")
        seen.add(parent)
        current = parent
    chain.reverse()
    return chain


def _graph_with_interner(meta: dict) -> LabeledDigraph:
    """Rebuild the graph, pinning every recorded interner id first.

    Packed pair codes are only meaningful relative to the writer's
    intern order, so the reader replays the recorded ``_vertices`` list
    (which may include since-removed vertices — ids are never recycled)
    before adding the live graph content.
    """
    from repro.core.persistence import decode_vertex

    document = meta["graph"]
    graph = LabeledDigraph(LabelRegistry(document["labels"]))
    intern = graph.interner.intern
    for encoded in meta["interner"]:
        intern(decode_vertex(encoded))
    for encoded in document["vertices"]:
        graph.add_vertex(decode_vertex(encoded))
    for v, u, label in document["edges"]:
        graph.add_edge(decode_vertex(v), decode_vertex(u), label)
    for encoded, data in document.get("vertex_data", ()):
        graph.set_vertex_data(decode_vertex(encoded), **data)
    return graph


def open_store(path: str | Path, *, verify: bool = True) -> CPQxIndex | InterestAwareIndex:
    """Open a store file (or delta chain) as a live engine, zero-copy.

    ``verify=True`` (the default) checks the columns checksum of every
    chain file up front; ``verify=False`` skips that single pass over
    the data for latency-critical opens (the meta checksum is always
    verified).  The returned engine carries a ``_store_state`` attribute
    so a serving session can continue the generation chain from it.
    """
    chain = _load_chain(Path(path), verify)
    newest = chain[-1][0]
    graph = _graph_with_interner(newest)
    interner = graph.interner

    # Newest-wins merge of the per-file class records.
    merged: dict[int, tuple[dict, memoryview]] = {}
    for meta, columns in chain:
        for class_id in meta.get("removed", ()):
            merged.pop(class_id, None)
        for record in meta["classes"]:
            merged[record["id"]] = (record, columns)

    foreign_order = newest["byteorder"] != sys.byteorder
    interests: frozenset | None = None
    if newest["type"] == "iaCPQx":
        interests = frozenset(tuple(seq) for seq in newest["interests"])
    il2c: dict[tuple[int, ...], set[int]] = {}
    ic2p: dict[int, PairSet] = {}
    class_sequences: dict[int, frozenset] = {}
    loop_classes: set[int] = set()
    for class_id, (record, columns) in merged.items():
        start = record["off"]
        column = columns[start : start + 8 * record["n"]].cast("q")
        if foreign_order:
            owned = array("q")
            owned.frombytes(column.cast("B"))
            owned.byteswap()
            ic2p[class_id] = PairSet.from_sorted_codes(owned, interner)
        else:
            ic2p[class_id] = PairSet.from_mapped(column, interner)
        sequences = frozenset(tuple(seq) for seq in record["sequences"])
        class_sequences[class_id] = sequences
        if record["loop"]:
            loop_classes.add(class_id)
        # Like the JSON loader: only live interests get Il2c postings.
        for seq in sequences:
            if interests is None or seq in interests:
                il2c.setdefault(seq, set()).add(class_id)

    common = dict(
        graph=graph,
        k=newest["k"],
        il2c=il2c,
        ic2p=ic2p,
        class_of=None,
        class_sequences=class_sequences,
        loop_classes=loop_classes,
    )
    engine: CPQxIndex | InterestAwareIndex
    if newest["type"] == "iaCPQx":
        assert interests is not None
        engine = InterestAwareIndex(interests=interests, **common)
    elif newest["type"] == "CPQx":
        engine = CPQxIndex(**common)
    else:  # pragma: no cover - writer only emits the two types
        raise PersistenceError(f"{path}: unknown index type {newest['type']!r}")
    # Deleted classes may leave next_class past max(ic2p) + 1; honour the
    # recorded counter so reopened engines never recycle a class id.
    engine._next_class = max(engine._next_class, newest["next_class"])
    engine._store_state = StoreState(
        path=Path(path),
        generation=newest["generation"],
        chain=len(chain),
        graph_version=graph.version,
        interests=interests,
        columns=dict(ic2p),
    )
    return engine
