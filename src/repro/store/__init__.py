"""Zero-copy columnar index storage (``.rsx``): mmap in, never pickle.

The store is the on-disk twin of the in-memory columnar core: each
``Ic2p`` posting column — a sorted ``array('q')`` of packed pair codes —
is written as its raw bytes into a versioned, checksummed, page-aligned
file, and read back as a read-only ``memoryview`` slice of an ``mmap``.
A :class:`~repro.core.pairset.PairSet` works identically over either
backing, so an opened engine answers queries with **zero
deserialization** of its postings, and N serving worker processes that
map the same generation share one copy of the page cache instead of N
unpickled heaps.

Three public entry points:

* :func:`write_store` — one self-contained file
  (``GraphDatabase.save(path, format="store")``, ``repro build --store``);
* :func:`open_store` — map a file or delta chain back into a live
  engine (``GraphDatabase.open`` dispatches here on the store magic);
* :func:`write_generation` — the serving path: append a delta file
  holding only the columns replaced since the previous
  :class:`StoreState` (lazy maintenance is copy-on-write, so "replaced"
  is an object-identity test), compacting to a full file when the chain
  grows long.

See ``docs/storage.md`` for the byte layout and the generation/update
protocol.
"""

from repro.store.format import MAX_CHAIN, PAGE_SIZE, STORE_MAGIC, STORE_VERSION
from repro.store.reader import open_store
from repro.store.writer import StoreState, write_generation, write_store

__all__ = [
    "MAX_CHAIN",
    "PAGE_SIZE",
    "STORE_MAGIC",
    "STORE_VERSION",
    "StoreState",
    "open_store",
    "write_generation",
    "write_store",
]
