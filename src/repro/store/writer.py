"""Writing store files: full snapshots and delta generations.

:func:`write_store` lays a built CPQx/iaCPQx out as one self-contained
store file (the ``repro build --store`` / ``GraphDatabase.save(...,
format="store")`` path).  :func:`write_generation` is the serving-side
entry: it tracks which posting columns changed since the last write —
maintenance is copy-on-write, so an untouched class still holds the
*same* :class:`~repro.core.pairset.PairSet` object — and emits either a
small **delta** file carrying only the touched columns (chained to its
parent by relative path) or, when the chain grows past
:data:`~repro.store.format.MAX_CHAIN`, a compacted full file.

Both writers keep the PR 7 crash-safety discipline of
:func:`repro.core.persistence.save_index`: same-directory temp file,
flush + fsync, ``os.replace``, with the same ``persist.fsync`` /
``persist.rename`` fault-injection sites — an interrupted write never
leaves a torn file at the target path.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import PersistenceError
from repro.store.format import MAX_CHAIN, PAGE_SIZE, align_page, pack_header

if TYPE_CHECKING:
    from repro.core.cpqx import CPQxIndex
    from repro.core.interest import InterestAwareIndex
    from repro.core.pairset import PairSet

    AnyIndex = CPQxIndex | InterestAwareIndex


@dataclass
class StoreState:
    """What the last written (or opened) generation covered.

    ``columns`` snapshots the engine's ``Ic2p`` by *object identity*:
    lazy maintenance replaces a touched class's :class:`PairSet` instead
    of mutating it, so ``engine._ic2p[cid] is state.columns[cid]``
    exactly when class ``cid`` is byte-identical to what is already on
    disk — the delta writer's dirty-class test needs no extra
    bookkeeping in the maintenance path.
    """

    path: Path
    generation: int
    #: Files in this generation's parent chain, including itself.
    chain: int
    graph_version: int
    interests: frozenset | None
    columns: dict[int, PairSet]


def _index_type(index: AnyIndex) -> str:
    from repro.core.cpqx import CPQxIndex
    from repro.core.interest import InterestAwareIndex

    if isinstance(index, InterestAwareIndex):
        return "iaCPQx"
    if isinstance(index, CPQxIndex):
        return "CPQx"
    raise PersistenceError(f"cannot store {type(index).__name__}")


def _column_bytes(pairset: PairSet) -> memoryview:
    """The column's raw bytes, zero-copy from either backing."""
    codes = pairset.codes
    view = codes if isinstance(codes, memoryview) else memoryview(codes)
    return view.cast("B")


def _write_file(
    index: AnyIndex,
    target: Path,
    *,
    generation: int,
    parent: StoreState | None = None,
    changed: set[int] | None = None,
    removed: tuple[int, ...] = (),
) -> StoreState:
    """Write one store file (full when ``parent`` is None, else a delta)."""
    from repro.core.persistence import _graph_document, encode_vertex
    from repro.serve.faults import current_injector

    index_type = _index_type(index)
    graph = index.graph
    class_ids = sorted(index._ic2p) if changed is None else sorted(changed)
    records = []
    offset = 0
    for class_id in class_ids:
        count = len(index._ic2p[class_id])
        records.append(
            {
                "id": class_id,
                "sequences": sorted(index._class_sequences[class_id]),
                "loop": class_id in index._loop_classes,
                "off": offset,
                "n": count,
            }
        )
        offset += 8 * count
    cols_len = offset
    meta: dict[str, object] = {
        "format": "repro-store",
        "version": 1,
        "type": index_type,
        "k": index.k,
        "byteorder": sys.byteorder,
        "generation": generation,
        "graph": _graph_document(graph),
        "interner": [encode_vertex(v) for v in graph.interner._vertices],
        "next_class": index._next_class,
        "classes": records,
    }
    if index_type == "iaCPQx":
        meta["interests"] = sorted(index.interests)
    if parent is not None:
        meta["delta_of"] = os.path.relpath(parent.path, target.parent)
        meta["removed"] = sorted(removed)
    payload = json.dumps(meta).encode("utf-8")
    cols_off = align_page(PAGE_SIZE + len(payload))
    cols_sha = hashlib.sha256()

    injector = current_injector()
    temp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        with open(temp, "wb") as handle:
            handle.seek(PAGE_SIZE)
            handle.write(payload)
            handle.truncate(cols_off)
            handle.seek(cols_off)
            for class_id in class_ids:
                chunk = _column_bytes(index._ic2p[class_id])
                cols_sha.update(chunk)
                handle.write(chunk)
            handle.seek(0)
            handle.write(
                pack_header(
                    len(payload),
                    cols_off,
                    cols_len,
                    hashlib.sha256(payload).digest(),
                    cols_sha.digest(),
                )
            )
            handle.flush()
            if injector is not None:
                injector.fail("persist.fsync")
            os.fsync(handle.fileno())
        if injector is not None:
            injector.fail("persist.rename")
        os.replace(temp, target)
    except BaseException:
        # Leave any previous file at `target` intact; drop the temp.
        with contextlib.suppress(OSError):
            os.unlink(temp)
        raise
    return StoreState(
        path=target,
        generation=generation,
        chain=1 if parent is None else parent.chain + 1,
        graph_version=graph.version,
        interests=getattr(index, "interests", None),
        columns=dict(index._ic2p),
    )


def write_store(index: AnyIndex, path: str | Path) -> StoreState:
    """Write ``index`` as one self-contained store file at ``path``."""
    return _write_file(index, Path(path), generation=1)


def _generation_path(directory: Path, generation: int) -> Path:
    return directory / f"gen-{generation:06d}.rsx"


def write_generation(
    index: AnyIndex, directory: str | Path, state: StoreState | None = None
) -> StoreState:
    """Write the next serving generation of ``index`` under ``directory``.

    With no prior ``state`` this is a full write.  Otherwise the columns
    replaced since ``state`` (and the classes deleted) go into a delta
    file whose meta names ``state.path`` as its parent; if *nothing*
    observable changed, ``state`` itself is returned and no file is
    written — the caller re-ships only the (path, token) pair.  Chains
    longer than :data:`MAX_CHAIN` compact back to a full file.
    """
    directory = Path(directory)
    if state is None:
        return _write_file(index, _generation_path(directory, 1), generation=1)
    changed = {
        class_id
        for class_id, members in index._ic2p.items()
        if state.columns.get(class_id) is not members
    }
    removed = tuple(set(state.columns) - set(index._ic2p))
    if (
        not changed
        and not removed
        and index.graph.version == state.graph_version
        and getattr(index, "interests", None) == state.interests
    ):
        return state
    generation = state.generation + 1
    target = _generation_path(directory, generation)
    if state.chain >= MAX_CHAIN:
        return _write_file(index, target, generation=generation)
    return _write_file(
        index, target, generation=generation, parent=state, changed=changed, removed=removed
    )
