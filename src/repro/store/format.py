"""On-disk layout of the zero-copy columnar store (``.rsx`` files).

A store file is the flat, page-aligned binary counterpart of the JSON
index document in :mod:`repro.core.persistence`: the same logical
content (graph, class records, sequence sets), but with every ``Ic2p``
posting column written as its raw little-endian ``int64`` bytes so a
reader can ``mmap`` the file and hand each class a read-only
``memoryview`` slice — no parsing, no copying, no unpickling.

Layout (all offsets from the start of the file)::

    offset 0      header page (PAGE_SIZE bytes, struct below + zero pad)
    offset 4096   meta region: one UTF-8 JSON document
    aligned up    columns region: the posting columns back to back,
                  each 8-byte aligned, in ascending class-id order

The fixed-size header binds the two variable regions::

    16s  magic            %repro-store\\0\\0\\0\\0
    I    version          STORE_VERSION
    I    flags            reserved (0)
    Q    meta_off         always PAGE_SIZE
    Q    meta_len         JSON byte length
    Q    cols_off         page-aligned start of the columns region
    Q    cols_len         columns byte length
    32s  meta_sha256      digest of the meta region
    32s  cols_sha256      digest of the columns region

Both regions are independently checksummed: the meta digest is always
verified on open (it is small), the columns digest on demand
(``open_store(verify=True)``, the default) — a bit flip in either
surfaces as :class:`~repro.errors.CorruptIndexError` before any query
runs against garbage.  The meta JSON carries the writing host's
byteorder; a reader on a foreign-endian host falls back to owned,
byte-swapped columns instead of mapping.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import NamedTuple

from repro.errors import CorruptIndexError, PersistenceError

#: First bytes of a store file; distinguishes it from the JSON formats.
STORE_MAGIC = b"%repro-store\x00\x00\x00\x00"

STORE_VERSION = 1

#: Header and columns regions start on page boundaries so the mapped
#: columns keep natural alignment and page-cache-friendly locality.
PAGE_SIZE = 4096

_HEADER = struct.Struct("<16sIIQQQQ32s32s")

#: Longest parent chain a delta generation may sit on before the writer
#: compacts back to a full file (bounds open-time file handles and the
#: reader's merge work).
MAX_CHAIN = 6


def align_page(offset: int) -> int:
    """Round ``offset`` up to the next page boundary."""
    return (offset + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def pack_header(
    meta_len: int, cols_off: int, cols_len: int, meta_sha: bytes, cols_sha: bytes
) -> bytes:
    """The full header page for the given region geometry."""
    packed = _HEADER.pack(
        STORE_MAGIC,
        STORE_VERSION,
        0,
        PAGE_SIZE,
        meta_len,
        cols_off,
        cols_len,
        meta_sha,
        cols_sha,
    )
    return packed + b"\x00" * (PAGE_SIZE - _HEADER.size)


class StoreHeader(NamedTuple):
    """The decoded fixed header of one store file."""

    meta_off: int
    meta_len: int
    cols_off: int
    cols_len: int
    meta_sha: bytes
    cols_sha: bytes


def read_header(buffer: bytes | memoryview, path: str | Path) -> StoreHeader:
    """Parse and validate a store file's header against the file size.

    ``buffer`` is the full mapped file.  Raises
    :class:`~repro.errors.CorruptIndexError` for anything that is not a
    well-formed store file of a readable version, with region extents
    guaranteed to lie inside the file.
    """
    if len(buffer) < _HEADER.size:
        raise CorruptIndexError(path, "truncated before end of header")
    magic, version, _flags, meta_off, meta_len, cols_off, cols_len, meta_sha, cols_sha = (
        _HEADER.unpack_from(buffer, 0)
    )
    if magic != STORE_MAGIC:
        raise CorruptIndexError(path, "unrecognized magic (not a store file)")
    if version != STORE_VERSION:
        raise PersistenceError(f"{path}: unsupported store version {version}")
    if meta_off + meta_len > len(buffer):
        raise CorruptIndexError(path, "truncated: meta region extends past end of file")
    if cols_off + cols_len > len(buffer):
        raise CorruptIndexError(path, "truncated: columns region extends past end of file")
    return StoreHeader(meta_off, meta_len, cols_off, cols_len, meta_sha, cols_sha)
